#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/evaluate.h"
#include "core/flat_forest.h"
#include "core/session.h"
#include "factor/message_passing.h"
#include "joinboost.h"
#include "serve/serving.h"
#include "test_util.h"
#include "util/check.h"

namespace joinboost {
namespace {

using test_util::BuildSmallSnowflake;
using test_util::MakeSnowflakeDataset;

core::TrainParams SmallGbdt(int iterations = 5) {
  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = iterations;
  params.num_leaves = 4;
  params.learning_rate = 0.3;
  return params;
}

/// RowView over an ExecTable with exactly the JoinedEval::Row semantics the
/// per-row path uses: numeric = Value::AsDouble promotion, categorical = raw
/// dictionary code. The reference side of the bit-identity tests.
class TableRow : public core::RowView {
 public:
  TableRow(const exec::ExecTable* t, size_t row) : t_(t), row_(row) {}
  double GetNumeric(const std::string& feature) const override {
    int idx = t_->Find("", feature);
    JB_CHECK(idx >= 0);
    return t_->cols[static_cast<size_t>(idx)].data.GetValue(row_).AsDouble();
  }
  int64_t GetCategory(const std::string& feature) const override {
    int idx = t_->Find("", feature);
    JB_CHECK(idx >= 0);
    return (*t_->cols[static_cast<size_t>(idx)].data.ints)[row_];
  }

 private:
  const exec::ExecTable* t_;
  size_t row_;
};

// ---------------------------------------------------------------------------
// FlatForest: batched prediction must be bit-identical to per-row Predict.
// ---------------------------------------------------------------------------

TEST(FlatForestTest, BitIdenticalToPerRowPredictOnTrainedModel) {
  exec::Database db(EngineProfile::DSwap());
  BuildSmallSnowflake(&db, 11, 400);
  Dataset ds = MakeSnowflakeDataset(&db);
  TrainResult res = Train(SmallGbdt(), ds);
  ASSERT_FALSE(res.model.trees.empty());

  core::JoinedEval eval = core::MaterializeJoin(ds);
  core::FlatForest forest = core::FlatForest::Compile(res.model);
  EXPECT_EQ(forest.num_trees(), res.model.trees.size());

  std::vector<double> batched = forest.PredictBatch(eval.table());
  ASSERT_EQ(batched.size(), eval.rows());
  for (size_t r = 0; r < eval.rows(); ++r) {
    // Exact equality: same FP addition order, same null/NaN routing.
    EXPECT_EQ(batched[r], eval.Predict(res.model, r)) << "row " << r;
  }
}

TEST(FlatForestTest, RangePredictionsConcatenateToTheFullBatch) {
  exec::Database db(EngineProfile::DSwap());
  BuildSmallSnowflake(&db, 12, 257);  // odd size: uneven final chunk
  Dataset ds = MakeSnowflakeDataset(&db);
  TrainResult res = Train(SmallGbdt(3), ds);

  core::JoinedEval eval = core::MaterializeJoin(ds);
  core::FlatForest forest = core::FlatForest::Compile(res.model);
  std::vector<double> full = forest.PredictBatch(eval.table());

  std::vector<double> chunked;
  const size_t kChunk = 64;
  for (size_t begin = 0; begin < eval.rows(); begin += kChunk) {
    size_t end = std::min(begin + kChunk, eval.rows());
    forest.PredictRange(eval.table(), begin, end, &chunked);
  }
  EXPECT_EQ(chunked, full);
}

TEST(FlatForestTest, HandBuiltForestCoversCategoricalNullAndAverage) {
  // Hand-built two-tree forest exercising the paths a trained snowflake
  // model misses: categorical splits, int64 nulls routing right through the
  // NaN promotion, and random-forest averaging.
  core::Ensemble model;
  model.base_score = 10.0;
  model.average = true;

  core::TreeModel t1;  // split on categorical code 2 of "color"
  core::TreeNode root;
  root.is_leaf = false;
  root.feature = "color";
  root.categorical = true;
  root.category = 2;
  root.left = 1;
  root.right = 2;
  core::TreeNode l, r;
  l.prediction = 1.0;
  r.prediction = -1.0;
  t1.nodes = {root, l, r};
  model.trees.push_back(t1);

  core::TreeModel t2;  // numeric split: x <= 5 (nulls go right)
  core::TreeNode root2;
  root2.is_leaf = false;
  root2.feature = "x";
  root2.threshold = 5.0;
  root2.left = 1;
  root2.right = 2;
  core::TreeNode l2, r2;
  l2.prediction = 100.0;
  r2.prediction = -100.0;
  t2.nodes = {root2, l2, r2};
  model.trees.push_back(t2);

  exec::ExecTable input;
  auto dict = std::make_shared<Dictionary>();
  dict->GetOrAdd("red");    // 0
  dict->GetOrAdd("green");  // 1
  dict->GetOrAdd("blue");   // 2
  input.cols.push_back(
      {"", "color",
       exec::VectorData::FromCodes({2, 0, kNullInt64, 2}, dict)});
  input.cols.push_back(
      {"", "x", exec::VectorData::FromInts({3, 7, kNullInt64, 5})});
  input.rows = 4;

  core::FlatForest forest = core::FlatForest::Compile(model);
  std::vector<double> got = forest.PredictBatch(input);
  ASSERT_EQ(got.size(), 4u);
  for (size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(got[r], model.Predict(TableRow(&input, r))) << "row " << r;
  }
  // Spot-check the semantics directly: row 0 = (blue, 3) -> (+1 + 100)/2.
  EXPECT_EQ(got[0], 10.0 + (1.0 + 100.0) / 2);
  // Row 2 = (null, null): null code != 2 -> right; null x -> NaN -> right.
  EXPECT_EQ(got[2], 10.0 + (-1.0 - 100.0) / 2);
}

// ---------------------------------------------------------------------------
// ServingContext: snapshot pinning, versioned reads, counters.
// ---------------------------------------------------------------------------

exec::ExecTable FactRows(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<int64_t> k1(n), k2(n);
  std::vector<double> x0(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    k1[i] = rng.NextInt(0, 16);
    k2[i] = rng.NextInt(0, 10);
    x0[i] = rng.NextDouble() * 10;
    y[i] = rng.NextGaussian();
  }
  exec::ExecTable out;
  out.cols.push_back({"", "k1", exec::VectorData::FromInts(std::move(k1))});
  out.cols.push_back({"", "k2", exec::VectorData::FromInts(std::move(k2))});
  out.cols.push_back({"", "x0", exec::VectorData::FromDoubles(std::move(x0))});
  out.cols.push_back({"", "y", exec::VectorData::FromDoubles(std::move(y))});
  out.rows = n;
  return out;
}

TEST(ServingTest, SessionsPinTheirSnapshotAcrossAppends) {
  exec::Database db(EngineProfile::DSwap());
  BuildSmallSnowflake(&db, 21, 300);
  serve::ServingContext ctx(&db, {"fact", "d1", "d2"});

  const std::string q =
      "SELECT COUNT(*) AS c, SUM(fact.y) AS s FROM fact "
      "JOIN d1 ON fact.k1 = d1.k1";
  serve::ServingContext::Session before = ctx.OpenSession();
  auto r1 = before.Query(q);
  ASSERT_EQ(r1->rows, 1u);
  EXPECT_EQ(r1->GetValue(0, 0).i, 300);

  ctx.Append("fact", FactRows(99, 50));

  // The pinned session still sees the pre-append fact table, bit-for-bit.
  auto r2 = before.Query(q);
  EXPECT_EQ(r2->GetValue(0, 0).i, 300);
  EXPECT_EQ(r2->GetValue(0, 1).d, r1->GetValue(0, 1).d);

  // A fresh session sees the appended rows under a newer version.
  serve::ServingContext::Session after = ctx.OpenSession();
  EXPECT_GT(after.version(), before.version());
  auto r3 = after.Query(q);
  EXPECT_EQ(r3->GetValue(0, 0).i, 350);

  EXPECT_EQ(ctx.snapshots_published(), 2u);  // ctor + append
  EXPECT_EQ(ctx.snapshot_reads(), 3u);
}

TEST(ServingTest, PredictBatchServesThePinnedModel) {
  exec::Database db(EngineProfile::DSwap());
  BuildSmallSnowflake(&db, 22, 300);
  Dataset ds = MakeSnowflakeDataset(&db);
  TrainResult res = Train(SmallGbdt(4), ds);
  core::JoinedEval eval = core::MaterializeJoin(ds);

  serve::ServingContext ctx(&db, {"fact", "d1", "d2"});
  serve::ServingContext::Session unmodeled = ctx.OpenSession();
  EXPECT_THROW(unmodeled.PredictBatch(eval.table()), JbError);

  ctx.PublishModel(res.model);
  serve::ServingContext::Session s = ctx.OpenSession();
  std::vector<double> preds = s.PredictBatch(eval.table());
  ASSERT_EQ(preds.size(), eval.rows());
  for (size_t r = 0; r < eval.rows(); ++r) {
    EXPECT_EQ(preds[r], eval.Predict(res.model, r)) << "row " << r;
  }

  // A model with fewer trees published later must not affect the session
  // that pinned the full model.
  core::Ensemble prefix = res.model;
  prefix.trees.resize(1);
  ctx.PublishModel(prefix);
  std::vector<double> again = s.PredictBatch(eval.table());
  EXPECT_EQ(again, preds);
  serve::ServingContext::Session s2 = ctx.OpenSession();
  std::vector<double> pruned = s2.PredictBatch(eval.table());
  EXPECT_NE(pruned, preds);

  EXPECT_EQ(ctx.batched_predictions(), 3 * eval.rows());
}

// ---------------------------------------------------------------------------
// Stress: N reader sessions vs one writer publishing appends + new trees.
// Every session's results must be bit-identical to some published snapshot.
// Runs under TSan in the sanitizer CI config; JB_SERVE_ROUNDS deepens it.
// ---------------------------------------------------------------------------

TEST(ServingStressTest, ReadersAlwaysObserveAPublishedSnapshot) {
  exec::Database db(EngineProfile::DSwap());
  BuildSmallSnowflake(&db, 31, 300);
  Dataset ds = MakeSnowflakeDataset(&db);
  TrainResult res = Train(SmallGbdt(4), ds);
  core::JoinedEval eval = core::MaterializeJoin(ds);

  // Fixed probe batch: predictions vary only with the snapshot's model.
  exec::ExecTable probe;
  probe.cols = eval.table().cols;
  probe.rows = eval.table().rows;

  serve::ServingContext ctx(&db, {"fact", "d1", "d2"});
  const std::string q =
      "SELECT COUNT(*) AS c, SUM(fact.y) AS s FROM fact "
      "JOIN d1 ON fact.k1 = d1.k1 JOIN d2 ON fact.k2 = d2.k2";

  struct Expected {
    int64_t count = 0;
    double sum = 0;
    std::vector<double> preds;
  };
  std::mutex exp_mu;
  std::condition_variable exp_cv;
  std::map<uint64_t, Expected> expected;  // version -> reference results

  // The writer (and the main thread, for the initial snapshot) records the
  // ground truth for each version right after publishing it.
  auto record = [&](uint64_t version) {
    serve::ServingContext::Session s = ctx.OpenSession();
    ASSERT_EQ(s.version(), version);  // single writer: current == published
    auto r = s.Query(q);
    Expected e;
    e.count = r->GetValue(0, 0).i;
    e.sum = r->GetValue(0, 1).d;
    e.preds = s.PredictBatch(probe);
    {
      std::lock_guard<std::mutex> lock(exp_mu);
      expected[version] = std::move(e);
    }
    exp_cv.notify_all();
  };
  record(ctx.PublishModel(res.model)->version);

  int rounds = 6;
  if (const char* env = std::getenv("JB_SERVE_ROUNDS")) {
    rounds = std::max(1, std::atoi(env));
  }

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int round = 0; round < rounds; ++round) {
      uint64_t v;
      if (round % 2 == 0) {
        v = ctx.Append("fact", FactRows(1000 + static_cast<uint64_t>(round),
                                        40))
                ->version;
      } else {
        core::Ensemble prefix = res.model;
        prefix.trees.resize(1 + static_cast<size_t>(round) % res.model
                                                                 .trees.size());
        v = ctx.PublishModel(prefix)->version;
      }
      record(v);
    }
    done.store(true);
    exp_cv.notify_all();
  });

  const int kReaders = 4;
  std::atomic<size_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      do {  // at least one full read even if the writer finishes first
        serve::ServingContext::Session s = ctx.OpenSession();
        auto r = s.Query(q);
        std::vector<double> preds = s.PredictBatch(probe);

        Expected e;
        {
          // The writer records each version right after publishing; wait the
          // short gap out rather than spinning.
          std::unique_lock<std::mutex> lock(exp_mu);
          exp_cv.wait(lock, [&] {
            return expected.count(s.version()) > 0;
          });
          e = expected[s.version()];
        }
        EXPECT_EQ(r->GetValue(0, 0).i, e.count) << "version " << s.version();
        EXPECT_EQ(r->GetValue(0, 1).d, e.sum) << "version " << s.version();
        EXPECT_EQ(preds, e.preds) << "version " << s.version();
        reads.fetch_add(1);
      } while (!done.load());
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_GT(reads.load(), 0u);
  // ctor + initial model + one publish per round, no torn extras.
  EXPECT_EQ(ctx.snapshots_published(), 2u + static_cast<uint64_t>(rounds));
  // Each record() and each reader loop issues one query + one prediction.
  EXPECT_GE(ctx.snapshot_reads(),
            2u * (1u + static_cast<uint64_t>(rounds)) + 2u * reads.load());
}

// Satellite: concurrent reader vs UPDATE must never see a torn table. The
// writer bumps two columns in lockstep; any reader observing a mix of old
// and new payloads would break the a-b invariant.
TEST(ServingStressTest, SqlUpdateIsNeverTornForConcurrentReaders) {
  exec::Database db(EngineProfile::DSwap());
  const size_t kRows = 2000;
  std::vector<double> a(kRows), b(kRows);
  std::vector<int64_t> k(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    a[i] = static_cast<double>(i);
    b[i] = static_cast<double>(i) + 7;
    k[i] = static_cast<int64_t>(i);
  }
  db.RegisterTable(TableBuilder("t")
                       .AddInts("k", k)
                       .AddDoubles("a", a)
                       .AddDoubles("b", b)
                       .Build());
  const double kInvariant = -7.0 * static_cast<double>(kRows);  // Σa - Σb

  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < 20; ++i) {
      db.Execute("UPDATE t SET a = a + 1, b = b + 1");
    }
    done.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      do {
        auto r = db.Query("SELECT SUM(t.a) AS sa, SUM(t.b) AS sb FROM t");
        double sa = r->GetValue(0, 0).d;
        double sb = r->GetValue(0, 1).d;
        EXPECT_EQ(sa - sb, kInvariant)
            << "torn read: sa=" << sa << " sb=" << sb;
      } while (!done.load());
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  auto r = db.Query("SELECT SUM(t.a) AS sa FROM t");
  double expect_sa = 0;
  for (size_t i = 0; i < kRows; ++i) expect_sa += static_cast<double>(i) + 20;
  EXPECT_EQ(r->GetValue(0, 0).d, expect_sa);
}

// ---------------------------------------------------------------------------
// Satellite: the Factorizer message cache is now guarded by its own mutex.
// Concurrent aggregate requests from multiple threads must produce the same
// totals as a serial run (and race-free under TSan).
// ---------------------------------------------------------------------------

TEST(ServingStressTest, FactorizerServesConcurrentAggregateRequests) {
  exec::Database db(EngineProfile::DSwap());
  BuildSmallSnowflake(&db, 41, 300);
  Dataset ds = MakeSnowflakeDataset(&db);
  core::TrainParams params;
  params.boosting = "dt";
  core::Session session(&ds, params);
  session.Prepare();

  factor::PredicateSet none;
  semiring::VarianceElem serial =
      session.fac().TotalAggregate(session.y_fact(), none, "serial");

  session.fac().ClearCache();
  const int kThreads = 4;
  std::vector<semiring::VarianceElem> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Mix cache-missing and cache-hitting requests across threads; the
      // factorizer's mutex serializes materialization of shared messages.
      factor::PredicateSet preds;
      if (t % 2 == 1) preds.Add(0, "x0 <= 5");
      (void)session.fac().TotalAggregate(session.y_fact(), preds,
                                         "concurrent");
      got[static_cast<size_t>(t)] =
          session.fac().TotalAggregate(session.y_fact(), none, "concurrent");
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(got[static_cast<size_t>(t)].c, serial.c) << "thread " << t;
    EXPECT_EQ(got[static_cast<size_t>(t)].s, serial.s) << "thread " << t;
  }
}

// ---------------------------------------------------------------------------
// Satellite: plan-cache staleness. An append that changes which join order
// is cheapest must evict the cached decision; renamed same-shape tables must
// keep hitting (that sharing is the cache's whole point for trainer temps).
// ---------------------------------------------------------------------------

TEST(PlanCacheStalenessTest, AppendThatFlipsTheCheapestJoinOrderEvicts) {
  // Join selectivity is 1/max(ndv_left, ndv_right) and DP cost is the sum of
  // intermediate cardinalities. d_small covers 10 of fact's 100 k1 values, so
  // joining it first shrinks the intermediate to ~50 rows (vs ~500 via
  // d_big); once d_small grows 300x with the same 10 keys, joining it first
  // multiplies the intermediate instead — the cheapest order flips.
  exec::Database db(EngineProfile::DSwap());
  std::vector<int64_t> fk1, fk2;
  for (int i = 0; i < 500; ++i) {
    fk1.push_back(i % 100);
    fk2.push_back(i % 100);
  }
  std::vector<int64_t> sk(10), bk(100);
  for (int i = 0; i < 10; ++i) sk[static_cast<size_t>(i)] = i;
  for (int i = 0; i < 100; ++i) bk[static_cast<size_t>(i)] = i;
  db.RegisterTable(
      TableBuilder("fact").AddInts("k1", fk1).AddInts("k2", fk2).Build());
  db.RegisterTable(TableBuilder("d_small").AddInts("k1", sk).Build());
  db.RegisterTable(TableBuilder("d_big").AddInts("k2", bk).Build());

  const std::string q =
      "SELECT COUNT(*) AS c FROM fact "
      "JOIN d_big ON fact.k2 = d_big.k2 "
      "JOIN d_small ON fact.k1 = d_small.k1";
  auto explain_order = [&] {
    auto t = db.Query("EXPLAIN " + q);
    std::string text;
    for (size_t r = 0; r < t->rows; ++r) {
      text += t->GetValue(r, 0).s;
      text += "\n";
    }
    size_t small = text.find("Scan d_small");
    size_t big = text.find("Scan d_big");
    EXPECT_NE(small, std::string::npos) << text;
    EXPECT_NE(big, std::string::npos) << text;
    return small < big ? std::string("small_first") : std::string("big_first");
  };

  plan::PlanStats before = db.PlanStatsTotals();
  db.Query(q);
  db.Query(q);
  plan::PlanStats warm = db.PlanStatsTotals() - before;
  EXPECT_EQ(warm.plan_cache_misses, 1u);
  EXPECT_EQ(warm.plan_cache_hits, 1u);
  EXPECT_EQ(db.plan_cache().evictions(), 0u);
  EXPECT_EQ(explain_order(), "small_first");

  // Blow d_small up 300x over the same key range: the cheapest order flips,
  // so the cached decision is stale and must be evicted, not replayed.
  std::vector<int64_t> grow(3000);
  for (size_t i = 0; i < grow.size(); ++i) {
    grow[i] = static_cast<int64_t>(i) % 10;
  }
  exec::ExecTable more;
  more.cols.push_back({"", "k1", exec::VectorData::FromInts(std::move(grow))});
  more.rows = 3000;
  db.AppendRows("d_small", more);

  before = db.PlanStatsTotals();
  db.Query(q);
  plan::PlanStats after = db.PlanStatsTotals() - before;
  EXPECT_EQ(after.plan_cache_misses, 1u) << "stale cached plan was replayed";
  EXPECT_EQ(after.plan_cache_hits, 0u);
  EXPECT_EQ(db.plan_cache().evictions(), 1u);
  EXPECT_EQ(explain_order(), "big_first");

  // And the re-planned decision is itself cached again.
  before = db.PlanStatsTotals();
  db.Query(q);
  after = db.PlanStatsTotals() - before;
  EXPECT_EQ(after.plan_cache_hits, 1u);
}

TEST(PlanCacheStalenessTest, RenamedSameShapeTablesStillHit) {
  // Trainer temp tables churn through counter-suffixed names; the stamps
  // must not evict entries just because the name seen at insert time died.
  exec::Database db(EngineProfile::DSwap());
  std::vector<int64_t> ks(100);
  for (int i = 0; i < 100; ++i) ks[static_cast<size_t>(i)] = i % 10;
  db.RegisterTable(TableBuilder("jb1_t").AddInts("k", ks).Build());
  db.RegisterTable(TableBuilder("jb2_t").AddInts("k", ks).Build());

  plan::PlanStats before = db.PlanStatsTotals();
  db.Query("SELECT COUNT(*) AS c FROM jb1_t WHERE jb1_t.k > 3");
  db.Query("SELECT COUNT(*) AS c FROM jb2_t WHERE jb2_t.k > 3");
  plan::PlanStats d = db.PlanStatsTotals() - before;
  EXPECT_EQ(d.plan_cache_misses, 1u);
  EXPECT_EQ(d.plan_cache_hits, 1u);
  EXPECT_EQ(db.plan_cache().evictions(), 0u);
}

}  // namespace
}  // namespace joinboost
