#include <gtest/gtest.h>

#include "util/check.h"

#include <cmath>

#include "semiring/objectives.h"
#include "semiring/semiring.h"
#include "semiring/sql_gen.h"
#include "util/rng.h"

namespace joinboost {
namespace semiring {
namespace {

class SemiringAxiomsTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SemiringAxiomsTest, VarianceSemiringAxioms) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    VarianceElem a = VarianceElem::Lift(rng.NextGaussian() * 10);
    VarianceElem b = VarianceElem::Lift(rng.NextGaussian() * 10);
    VarianceElem c = VarianceElem::Lift(rng.NextGaussian() * 10);
    // ⊕ commutative/associative with zero (associativity up to fp error).
    EXPECT_EQ(a + b, b + a);
    VarianceElem l = (a + b) + c;
    VarianceElem r = a + (b + c);
    EXPECT_NEAR(l.s, r.s, 1e-9 * std::max(1.0, std::fabs(r.s)));
    EXPECT_NEAR(l.q, r.q, 1e-9 * std::max(1.0, std::fabs(r.q)));
    EXPECT_EQ(a + VarianceElem::Zero(), a);
    // ⊗ commutative with unit, annihilated by zero.
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * VarianceElem::One(), a);
    EXPECT_EQ(a * VarianceElem::Zero(), VarianceElem::Zero());
    // distributivity a⊗(b⊕c) = a⊗b ⊕ a⊗c.
    VarianceElem lhs = a * (b + c);
    VarianceElem rhs = a * b + a * c;
    EXPECT_NEAR(lhs.c, rhs.c, 1e-9);
    EXPECT_NEAR(lhs.s, rhs.s, 1e-9 * std::max(1.0, std::fabs(rhs.s)));
    EXPECT_NEAR(lhs.q, rhs.q, 1e-9 * std::max(1.0, std::fabs(rhs.q)));
  }
}

TEST_P(SemiringAxiomsTest, AdditionToMultiplicationPreserving) {
  Rng rng(GetParam() ^ 0xBEEF);
  for (int trial = 0; trial < 100; ++trial) {
    double a = rng.NextGaussian() * 100;
    double b = rng.NextGaussian() * 100;
    EXPECT_TRUE(VarianceAddToMulHolds(a, b));
  }
  // The concrete identity from §4.2: lift(y−p) = lift(y) ⊗ lift(−p).
  double y = 3.5, p = 1.25;
  VarianceElem lhs = VarianceElem::Lift(y - p);
  VarianceElem rhs = VarianceElem::Lift(y) * VarianceElem::Lift(-p);
  EXPECT_NEAR(lhs.q, rhs.q, 1e-12);
}

TEST_P(SemiringAxiomsTest, GradientSemiringMatchesVarianceCs) {
  // The gradient semi-ring is structurally the (c,s) slice of the variance
  // semi-ring with h in the count role.
  Rng rng(GetParam() ^ 0xF00D);
  for (int trial = 0; trial < 50; ++trial) {
    double g1 = rng.NextGaussian(), h1 = rng.NextDouble() + 0.1;
    double g2 = rng.NextGaussian(), h2 = rng.NextDouble() + 0.1;
    GradientElem a = GradientElem::Lift(g1, h1);
    GradientElem b = GradientElem::Lift(g2, h2);
    GradientElem prod = a * b;
    EXPECT_NEAR(prod.h, h1 * h2, 1e-12);
    EXPECT_NEAR(prod.g, g1 * h2 + g2 * h1, 1e-12);
    GradientElem sum = a + b;
    EXPECT_NEAR(sum.g, g1 + g2, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemiringAxiomsTest,
                         ::testing::Values(1, 2, 3, 99));

TEST(SemiringTest, VarianceStatistic) {
  // Example 1 from the paper: (C,S,Q) = (8,16,36) => variance 4.
  VarianceElem e{8, 16, 36};
  EXPECT_DOUBLE_EQ(e.Variance(), 4.0);
}

TEST(SemiringTest, ClassCountGiniAndEntropy) {
  ClassCountElem pure = ClassCountElem::Lift(3, 1);
  EXPECT_DOUBLE_EQ(pure.Gini(), 0.0);
  EXPECT_DOUBLE_EQ(pure.Entropy(), 0.0);

  ClassCountElem even{4, {2, 2, 0}};
  EXPECT_DOUBLE_EQ(even.Gini(), 0.5);
  EXPECT_DOUBLE_EQ(even.Entropy(), 1.0);

  // A perfectly separating split removes all impurity.
  ClassCountElem total{4, {2, 2, 0}};
  ClassCountElem sel{2, {2, 0, 0}};
  EXPECT_DOUBLE_EQ(GiniReduction(total, sel), 0.5);
  EXPECT_DOUBLE_EQ(EntropyReduction(total, sel), 1.0);
  EXPECT_GT(ChiSquare(total, sel), 0.0);
}

TEST(SemiringTest, VarianceReductionFormula) {
  // Splitting {0,0,10,10} into {0,0} and {10,10} removes all variance.
  double red = VarianceReduction(4, 20, 2, 0);
  // -S²/C + Sσ²/Cσ + (S−Sσ)²/(C−Cσ) = -100 + 0 + 200 = 100 = C·var.
  EXPECT_DOUBLE_EQ(red, 100.0);
  // Null split yields zero reduction.
  EXPECT_NEAR(VarianceReduction(4, 20, 2, 10), 0.0, 1e-12);
}

TEST(SemiringTest, GradientGainRegularization) {
  // λ shrinks the gain; α subtracts the per-leaf penalty.
  double g0 = GradientGain(10, 10, 8, 2, 0, 0);
  double g_reg = GradientGain(10, 10, 8, 2, 5.0, 0);
  double g_alpha = GradientGain(10, 10, 8, 2, 0, 1.0);
  EXPECT_GT(g0, g_reg);
  EXPECT_DOUBLE_EQ(g_alpha, g0 - 1.0);
}

TEST(SemiringSqlGenTest, ProductExpressions) {
  SqlOperand r{"r", true, "c", "s", "q"};
  SqlOperand m{"m", true, "c", "s", "q"};
  SqlOperand identity{"t", false, "c", "s", "q"};
  EXPECT_EQ(VarianceSqlGen::MulC({r, m}), "r.c * m.c");
  EXPECT_EQ(VarianceSqlGen::MulS({r, m}), "r.s * m.c + m.s * r.c");
  EXPECT_EQ(VarianceSqlGen::MulQ({r, m}),
            "r.q * m.c + m.q * r.c + 2 * r.s * m.s");
  // Identity operands drop out entirely (Appendix D.2).
  EXPECT_EQ(VarianceSqlGen::MulC({r, identity}), "r.c");
  EXPECT_EQ(VarianceSqlGen::MulC({identity}), "1");
  EXPECT_EQ(VarianceSqlGen::MulS({identity}), "0");
}

TEST(SemiringSqlGenTest, ThreeOperandQuadratic) {
  SqlOperand a{"a", true, "c", "s", "q"};
  SqlOperand b{"b", true, "c", "s", "q"};
  SqlOperand c{"c3", true, "c", "s", "q"};
  std::string q = VarianceSqlGen::MulQ({a, b, c});
  // Three q-terms and three cross s-terms.
  EXPECT_NE(q.find("a.q * b.c * c3.c"), std::string::npos);
  EXPECT_NE(q.find("2 * a.s * b.s * c3.c"), std::string::npos);
  EXPECT_NE(q.find("2 * b.s * c3.s * a.c"), std::string::npos);
}

class ObjectiveTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ObjectiveTest, GradientIsNegativeLossDerivative) {
  auto obj = MakeObjective(GetParam());
  Rng rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    double y = rng.NextDouble() * 10 + 1;  // positive (poisson/gamma need it)
    double p = rng.NextDouble() * 2 + 0.1;
    double eps = 1e-6;
    double dloss = (obj->Loss(y, p + eps) - obj->Loss(y, p - eps)) / (2 * eps);
    double g = obj->Gradient(y, p);
    // g = −∂L/∂p (may be a scaled/approximated version for mae-like
    // objectives at kinks, so allow generous tolerance near |ε|→0).
    if (std::fabs(y - p) > 1e-3) {
      EXPECT_NEAR(-dloss, g, 1e-3 * std::max(1.0, std::fabs(g)))
          << GetParam() << " y=" << y << " p=" << p;
    }
    EXPECT_GE(obj->Hessian(y, p), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllObjectives, ObjectiveTest,
                         ::testing::ValuesIn(ObjectiveNames()));

TEST(ObjectiveTest, OnlyRmseSupportsGalaxy) {
  for (const auto& name : ObjectiveNames()) {
    auto obj = MakeObjective(name);
    EXPECT_EQ(obj->SupportsGalaxy(), name == "rmse") << name;
  }
}

TEST(ObjectiveTest, UnknownObjectiveThrows) {
  EXPECT_THROW(MakeObjective("nope"), JbError);
}

}  // namespace
}  // namespace semiring
}  // namespace joinboost
