// Chunked column storage: builder layouts, layout-oblivious reads,
// rewrite-free appends, per-chunk statistics reuse, and the unified
// Query(ReadContext) entry point.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "exec/engine.h"
#include "sql/parser.h"
#include "stats/stats_manager.h"
#include "storage/column.h"
#include "storage/table.h"
#include "test_util.h"
#include "util/check.h"

namespace joinboost {
namespace {

using exec::Database;
using exec::ExecTable;

std::vector<int64_t> Iota(size_t n, int64_t start = 0) {
  std::vector<int64_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = start + static_cast<int64_t>(i);
  return v;
}

// ---------------------------------------------------------------------------
// ColumnBuilder layouts.
// ---------------------------------------------------------------------------

TEST(ColumnBuilderTest, ChunkRowsProducesRaggedLastChunk) {
  auto col = ColumnBuilder(TypeId::kInt64)
                 .ChunkRows(1000)
                 .AppendInts(Iota(2500))
                 .Build();
  EXPECT_EQ(col->size(), 2500u);
  ASSERT_EQ(col->num_chunks(), 3u);
  EXPECT_EQ(col->chunk_offsets(), (std::vector<size_t>{0, 1000, 2000, 2500}));
  EXPECT_EQ(col->chunk(2)->rows, 500u);
  EXPECT_EQ(col->DecodeInts(), Iota(2500));
}

TEST(ColumnBuilderTest, DefaultLayoutIsMonolithic) {
  auto col = ColumnBuilder(TypeId::kInt64).AppendInts(Iota(5000)).Build();
  EXPECT_EQ(col->num_chunks(), 1u);
  // Single plain chunk: the zero-copy PlainInts path must work.
  EXPECT_EQ(col->PlainInts()->size(), 5000u);
}

TEST(ColumnBuilderTest, ExplicitOffsetsReproduceALayout) {
  std::vector<size_t> layout = {0, 7, 7, 100, 256};
  auto col = ColumnBuilder(TypeId::kInt64)
                 .ChunkOffsets(layout)
                 .AppendInts(Iota(256))
                 .Build();
  EXPECT_EQ(col->chunk_offsets(), layout);
  EXPECT_EQ(col->DecodeInts(), Iota(256));
  // A layout that does not cover the rows throws.
  EXPECT_THROW(ColumnBuilder(TypeId::kInt64)
                   .ChunkOffsets({0, 10})
                   .AppendInts(Iota(256))
                   .Build(),
               JbError);
}

TEST(ColumnBuilderTest, ZeroRowColumnHasOneEmptyChunk) {
  auto col = ColumnBuilder(TypeId::kFloat64).Build();
  EXPECT_EQ(col->size(), 0u);
  ASSERT_EQ(col->num_chunks(), 1u);
  EXPECT_EQ(col->chunk_offsets(), (std::vector<size_t>{0, 0}));
}

TEST(ColumnBuilderTest, DictionaryCodesAreChunkingIndependent) {
  std::vector<std::string> values;
  for (int i = 0; i < 500; ++i) values.push_back("s" + std::to_string(i % 37));
  auto mono = ColumnBuilder(TypeId::kString).AppendStrings(values).Build();
  auto chunked =
      ColumnBuilder(TypeId::kString).ChunkRows(64).AppendStrings(values).Build();
  EXPECT_EQ(chunked->num_chunks(), 8u);
  EXPECT_EQ(mono->DecodeInts(), chunked->DecodeInts());
  EXPECT_EQ(mono->dict()->size(), chunked->dict()->size());
}

// ---------------------------------------------------------------------------
// Layout-oblivious reads.
// ---------------------------------------------------------------------------

TEST(ChunkedColumnTest, MaterializeRangesMatchDecodeForAnyLayout) {
  std::vector<int64_t> vals = Iota(10000, -300);
  for (size_t chunk_rows : {size_t{0}, size_t{4096}, size_t{999}}) {
    for (bool encode : {false, true}) {
      auto col = ColumnBuilder(TypeId::kInt64)
                     .ChunkRows(chunk_rows)
                     .AppendInts(vals)
                     .Build();
      if (encode) col->Encode();
      EXPECT_EQ(col->DecodeInts(), vals);
      // Ranges that straddle chunk and block boundaries.
      for (auto [b, e] : std::vector<std::pair<size_t, size_t>>{
               {0, 10000}, {0, 1}, {998, 1001}, {4095, 4097}, {9000, 10000}}) {
        std::vector<int64_t> out(e - b);
        col->MaterializeInts(b, e, out.data());
        for (size_t i = b; i < e; ++i) {
          ASSERT_EQ(out[i - b], vals[i])
              << "chunk_rows=" << chunk_rows << " encode=" << encode
              << " range [" << b << "," << e << ") row " << i;
        }
      }
      for (size_t r : {size_t{0}, size_t{999}, size_t{1000}, size_t{9999}}) {
        EXPECT_EQ(col->GetValue(r).i, vals[r]);
      }
    }
  }
}

TEST(ChunkedColumnTest, RechunkPreservesValuesVersionAndEncoding) {
  auto col = ColumnBuilder(TypeId::kInt64).AppendInts(Iota(5000)).Build();
  col->Encode();
  uint64_t version = col->version();
  col->Rechunk(1024);
  EXPECT_EQ(col->num_chunks(), 5u);
  EXPECT_TRUE(col->encoded());
  EXPECT_EQ(col->version(), version);
  EXPECT_EQ(col->DecodeInts(), Iota(5000));
  col->Rechunk(0);
  EXPECT_EQ(col->num_chunks(), 1u);
  EXPECT_TRUE(col->encoded());
  EXPECT_EQ(col->DecodeInts(), Iota(5000));
}

TEST(ChunkedColumnTest, EncodedViewCoversEveryChunkOrIsNull) {
  auto col =
      ColumnBuilder(TypeId::kInt64).ChunkRows(1024).AppendInts(Iota(3000)).Build();
  EXPECT_EQ(col->EncodedIntsView(), nullptr);  // plain chunks
  col->Encode();
  auto view = col->EncodedIntsView();
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->rows, 3000u);
  ASSERT_EQ(view->slices.size(), 3u);
  EXPECT_EQ(view->slices[1].row_begin, 1024u);
}

TEST(ChunkedScanTest, ZoneMapsPruneWholeChunks) {
  EngineProfile p = EngineProfile::DSwap();
  p.chunk_rows = 1024;
  Database db(p);
  db.LoadTable(TableBuilder("t").AddInts("x", Iota(10000)).Build());
  db.ClearPlanStats();
  auto r = db.Query("SELECT t.x FROM t WHERE t.x >= 9216");
  EXPECT_EQ(r->rows, 784u);
  plan::PlanStats s = db.PlanStatsTotals();
  // Chunks 0..8 have zone-map max < 9216: every block in them is eliminated
  // without decoding, so the whole chunk counts as pruned.
  EXPECT_EQ(s.chunks_pruned, 9u);
  EXPECT_GT(s.blocks_skipped, 0u);
}

TEST(ChunkedTableTest, TableRechunkAppliesToEveryColumn) {
  TablePtr t = TableBuilder("t")
                   .AddInts("a", Iota(2100))
                   .AddDoubles("b", std::vector<double>(2100, 1.5))
                   .Build();
  EXPECT_EQ(t->num_chunks(), 1u);
  t->Rechunk(1000);
  EXPECT_EQ(t->num_chunks(), 3u);
  EXPECT_EQ(t->chunk_offsets(), (std::vector<size_t>{0, 1000, 2000, 2100}));
  for (size_t c = 0; c < t->num_columns(); ++c) {
    EXPECT_EQ(t->column(c)->num_chunks(), 3u);
  }
}

// ---------------------------------------------------------------------------
// Table::AddColumn / SetColumn length validation (regression).
// ---------------------------------------------------------------------------

TEST(TableValidationTest, AddColumnRejectsMismatchedLength) {
  TablePtr t = TableBuilder("t").AddInts("a", Iota(10)).Build();
  auto short_col = ColumnBuilder(TypeId::kInt64).AppendInts(Iota(7)).Build();
  EXPECT_THROW(t->AddColumn({"b", TypeId::kInt64}, short_col), JbError);
  EXPECT_THROW(t->AddColumn({"b", TypeId::kInt64}, nullptr), JbError);
  // Matching length is accepted.
  auto ok_col = ColumnBuilder(TypeId::kInt64).AppendInts(Iota(10)).Build();
  t->AddColumn({"b", TypeId::kInt64}, ok_col);
  EXPECT_EQ(t->num_columns(), 2u);
}

TEST(TableValidationTest, SetColumnRejectsMismatchedLengthAndType) {
  TablePtr t = TableBuilder("t").AddInts("a", Iota(10)).Build();
  auto short_col = ColumnBuilder(TypeId::kInt64).AppendInts(Iota(3)).Build();
  EXPECT_THROW(t->SetColumn(0, short_col), JbError);
  auto wrong_type =
      ColumnBuilder(TypeId::kFloat64).AppendDoubles({1, 2, 3, 4, 5, 6, 7, 8, 9, 10}).Build();
  EXPECT_THROW(t->SetColumn(0, wrong_type), JbError);
  EXPECT_THROW(t->SetColumn(0, nullptr), JbError);
  auto ok = ColumnBuilder(TypeId::kInt64).AppendInts(Iota(10, 100)).Build();
  t->SetColumn(0, ok);
  EXPECT_EQ(t->column(size_t{0})->GetValue(0).i, 100);
}

// ---------------------------------------------------------------------------
// Rewrite-free appends.
// ---------------------------------------------------------------------------

ExecTable IntBatch(const std::string& name, std::vector<int64_t> vals) {
  ExecTable batch;
  batch.rows = vals.size();
  batch.cols.push_back(
      {"", name, exec::VectorData::FromInts(std::move(vals))});
  return batch;
}

TEST(AppendRowsTest, AppendSealsNewChunksAndNeverRewritesExistingOnes) {
  EngineProfile p = EngineProfile::DSwap();
  p.chunk_rows = 1024;
  Database db(p);
  db.LoadTable(TableBuilder("t").AddInts("x", Iota(3000)).Build());
  TablePtr before = db.catalog().Get("t");
  std::vector<ChunkPtr> old_chunks = before->column(size_t{0})->chunks();
  ASSERT_EQ(old_chunks.size(), 3u);

  plan::PlanStats start = db.PlanStatsTotals();
  TablePtr after = db.AppendRows("t", IntBatch("x", Iota(2000, 3000)));
  plan::PlanStats delta = db.PlanStatsTotals() - start;

  // The append's counter contract: new segments only, zero rewrites.
  EXPECT_EQ(delta.chunks_rewritten, 0u);
  EXPECT_GT(delta.chunks_created, 0u);

  // Existing segments are reused BY POINTER — the O(new rows) guarantee.
  const auto& new_chunks = after->column(size_t{0})->chunks();
  ASSERT_GE(new_chunks.size(), old_chunks.size());
  for (size_t i = 0; i < old_chunks.size(); ++i) {
    EXPECT_EQ(new_chunks[i].get(), old_chunks[i].get())
        << "existing chunk " << i << " was rebuilt by the append";
  }

  EXPECT_EQ(after->num_rows(), 5000u);
  EXPECT_EQ(db.QueryScalarDouble("SELECT SUM(t.x) AS s FROM t"),
            4999.0 * 5000.0 / 2.0);
  EXPECT_EQ(db.QueryScalarDouble("SELECT COUNT(*) AS c FROM t"), 5000.0);
}

TEST(AppendRowsTest, StringAppendCopiesDictionaryAndKeepsOldCodesValid) {
  EngineProfile p = EngineProfile::DSwap();
  p.chunk_rows = 256;
  Database db(p);
  std::vector<std::string> vals;
  for (int i = 0; i < 600; ++i) vals.push_back("v" + std::to_string(i % 9));
  db.LoadTable(TableBuilder("t").AddStrings("s", vals).Build());
  TablePtr before = db.catalog().Get("t");
  DictionaryPtr old_dict = before->column(size_t{0})->dict();
  std::vector<ChunkPtr> old_chunks = before->column(size_t{0})->chunks();

  // The batch carries its own dictionary with different codes and new values.
  auto batch_dict = std::make_shared<Dictionary>();
  std::vector<int64_t> codes;
  for (const char* s : {"new_a", "v3", "new_b", "v0"}) {
    codes.push_back(batch_dict->GetOrAdd(s));
  }
  ExecTable batch;
  batch.rows = codes.size();
  batch.cols.push_back(
      {"", "s", exec::VectorData::FromCodes(std::move(codes), batch_dict)});

  plan::PlanStats start = db.PlanStatsTotals();
  TablePtr after = db.AppendRows("t", batch);
  plan::PlanStats delta = db.PlanStatsTotals() - start;
  EXPECT_EQ(delta.chunks_rewritten, 0u);

  // Readers of the OLD table keep their dictionary unchanged.
  EXPECT_EQ(before->column(size_t{0})->dict().get(), old_dict.get());
  EXPECT_EQ(old_dict->size(), 9u);
  // The new table's dictionary is an append-only superset, so the reused
  // segments' codes resolve to the same strings.
  const auto& new_col = after->column(size_t{0});
  for (size_t i = 0; i < old_chunks.size(); ++i) {
    EXPECT_EQ(new_col->chunks()[i].get(), old_chunks[i].get());
  }
  EXPECT_EQ(new_col->GetValue(0).s, vals[0]);
  EXPECT_EQ(new_col->GetValue(600).s, "new_a");
  EXPECT_EQ(new_col->GetValue(601).s, "v3");
  // Old + translated codes agree on equality classes.
  EXPECT_EQ(db.QueryScalarDouble(
                "SELECT COUNT(*) AS c FROM t WHERE t.s = 'v3'"),
            67.0 + 1.0);
}

TEST(AppendRowsTest, MonolithicProfileAppendAlsoAvoidsRewrites) {
  // Even with chunk_rows = 0 (the default, monolithic loads) the append
  // seals the batch as a fresh segment instead of rebuilding the column.
  Database db(EngineProfile::DSwap());
  db.LoadTable(TableBuilder("t").AddInts("x", Iota(4000)).Build());
  std::vector<ChunkPtr> old_chunks =
      db.catalog().Get("t")->column(size_t{0})->chunks();
  ASSERT_EQ(old_chunks.size(), 1u);
  plan::PlanStats start = db.PlanStatsTotals();
  TablePtr after = db.AppendRows("t", IntBatch("x", Iota(100, 4000)));
  plan::PlanStats delta = db.PlanStatsTotals() - start;
  EXPECT_EQ(delta.chunks_rewritten, 0u);
  EXPECT_EQ(after->column(size_t{0})->num_chunks(), 2u);
  EXPECT_EQ(after->column(size_t{0})->chunks()[0].get(), old_chunks[0].get());
  EXPECT_EQ(db.QueryScalarDouble("SELECT COUNT(*) AS c FROM t"), 4100.0);
}

// ---------------------------------------------------------------------------
// Per-chunk statistics invalidation.
// ---------------------------------------------------------------------------

TEST(ChunkedStatsTest, AppendReusesSegmentStatsAndMatchesMonolithicBuild) {
  EngineProfile p = EngineProfile::DSwap();
  p.chunk_rows = 1024;
  Database db(p);
  std::vector<int64_t> vals;
  for (int i = 0; i < 3000; ++i) vals.push_back(i % 97);
  db.LoadTable(TableBuilder("t").AddInts("x", vals).Build());

  stats::StatsManager mgr;
  TablePtr t1 = db.catalog().Get("t");
  auto s1 = mgr.Get(t1, size_t{0});
  ASSERT_NE(s1, nullptr);
  size_t misses_after_first = mgr.seg_misses();
  EXPECT_GT(misses_after_first, 0u);
  EXPECT_EQ(mgr.seg_hits(), 0u);

  db.AppendRows("t", IntBatch("x", {1000, 2000, 3000}));
  TablePtr t2 = db.catalog().Get("t");
  auto s2 = mgr.Get(t2, size_t{0});
  ASSERT_NE(s2, nullptr);
  // The pre-existing segments' sorted distinct lists were reused; only the
  // freshly sealed batch segment was built.
  EXPECT_EQ(mgr.seg_hits(), t1->column(size_t{0})->num_chunks());
  EXPECT_EQ(mgr.seg_misses(), misses_after_first + 1);

  // The merged statistics are exactly what a monolithic build produces.
  stats::ColumnStats ref =
      stats::StatsManager::BuildColumnStats(*t2->column(size_t{0}));
  EXPECT_EQ(s2->row_count, ref.row_count);
  EXPECT_EQ(s2->null_count, ref.null_count);
  EXPECT_EQ(s2->distinct_count, ref.distinct_count);
  EXPECT_EQ(s2->min, ref.min);
  EXPECT_EQ(s2->max, ref.max);
  ASSERT_EQ(s2->histogram.buckets().size(), ref.histogram.buckets().size());
  for (int64_t v : {0, 50, 96, 1000, 3000}) {
    EXPECT_EQ(s2->histogram.EstimateEq(static_cast<double>(v)),
              ref.histogram.EstimateEq(static_cast<double>(v)))
        << v;
  }
}

// ---------------------------------------------------------------------------
// Unified read entry point.
// ---------------------------------------------------------------------------

TEST(ReadContextTest, DefaultContextMatchesLiveCatalogQuery) {
  Database db(EngineProfile::DSwap());
  db.LoadTable(TableBuilder("t").AddInts("x", Iota(100)).Build());
  sql::Statement stmt = sql::Parse("SELECT SUM(t.x) AS s FROM t");
  ExecTable via_ctx = db.Query(exec::ReadContext{}, *stmt.select);
  ExecTable via_legacy = db.RunSelect(*stmt.select);
  ASSERT_EQ(via_ctx.rows, 1u);
  EXPECT_EQ(via_ctx.GetValue(0, 0).AsDouble(),
            via_legacy.GetValue(0, 0).AsDouble());
}

TEST(ReadContextTest, PinnedCatalogShieldsReadersFromWriters) {
  Database db(EngineProfile::DSwap());
  db.LoadTable(TableBuilder("t").AddInts("x", Iota(50)).Build());
  Catalog pinned;
  pinned.Register(db.catalog().Get("t"));
  db.AppendRows("t", IntBatch("x", Iota(50, 50)));

  exec::ReadContext rctx;
  rctx.catalog = &pinned;
  rctx.tag = "pinned";
  auto pinned_count = db.Query(rctx, "SELECT COUNT(*) AS c FROM t");
  EXPECT_EQ(pinned_count->GetValue(0, 0).AsDouble(), 50.0);
  EXPECT_EQ(db.QueryScalarDouble("SELECT COUNT(*) AS c FROM t"), 100.0);
  // The pinned read was logged under its tag.
  EXPECT_EQ(db.CountForTag("pinned"), 1u);
}

TEST(ReadContextTest, ProfileOverrideControlsPlannerAndThreads) {
  Database db(EngineProfile::DSwap());
  db.LoadTable(TableBuilder("t").AddInts("x", Iota(2000)).Build());
  EngineProfile raw = db.profile();
  raw.use_planner = false;
  exec::ReadContext rctx;
  rctx.profile = &raw;

  plan::PlanStats before = db.PlanStatsTotals();
  auto r = db.Query(rctx, "SELECT COUNT(*) AS c FROM t WHERE t.x > 10");
  plan::PlanStats delta = db.PlanStatsTotals() - before;
  EXPECT_EQ(r->GetValue(0, 0).AsDouble(), 1989.0);
  EXPECT_EQ(delta.queries_planned, 0u)
      << "profile override with use_planner=false still planned";

  // Default context plans as usual.
  before = db.PlanStatsTotals();
  db.Query("SELECT COUNT(*) AS c FROM t WHERE t.x > 10");
  delta = db.PlanStatsTotals() - before;
  EXPECT_EQ(delta.queries_planned, 1u);
}

}  // namespace
}  // namespace joinboost
