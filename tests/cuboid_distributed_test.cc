#include <gtest/gtest.h>

#include "core/distributed.h"
#include "data/generators.h"
#include "factor/cuboid.h"
#include "joinboost.h"

namespace joinboost {
namespace {

data::FavoritaConfig TinyConfig() {
  data::FavoritaConfig config;
  config.sales_rows = 4000;
  config.num_items = 50;
  config.num_stores = 8;
  config.num_dates = 40;
  config.extra_features_per_dim = 0;
  return config;
}

TEST(CuboidTest, CuboidTrainingConvergesAndShrinksData) {
  exec::Database db(EngineProfile::DSwap());
  Dataset ds = data::MakeFavorita(&db, TinyConfig());

  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 8;
  params.num_leaves = 8;
  params.learning_rate = 0.3;
  params.max_bin = 8;
  factor::CuboidResult res = factor::TrainCuboidGbdt(ds, params);

  EXPECT_LT(res.cuboid_rows, 4000u);  // far fewer groups than fact rows
  ASSERT_EQ(res.rmse_curve.size(), 9u);
  EXPECT_LT(res.rmse_curve.back(), res.rmse_curve.front());
  for (size_t i = 1; i < res.rmse_curve.size(); ++i) {
    EXPECT_LE(res.rmse_curve[i], res.rmse_curve[i - 1] + 1e-9);
  }

  // The returned model predicts in raw feature space.
  core::JoinedEval eval = core::MaterializeJoin(ds);
  double rmse_eval = eval.Rmse(res.model);
  // Cuboid-internal rmse and row-level rmse agree (same residuals).
  EXPECT_NEAR(rmse_eval, res.rmse_curve.back(),
              0.05 * res.rmse_curve.back() + 1e-6);
}

TEST(CuboidTest, MoreBinsMoreGroups) {
  exec::Database db(EngineProfile::DSwap());
  Dataset ds = data::MakeFavorita(&db, TinyConfig());
  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 2;
  params.num_leaves = 4;
  params.max_bin = 4;
  size_t rows4 = factor::TrainCuboidGbdt(ds, params).cuboid_rows;
  params.max_bin = 16;
  size_t rows16 = factor::TrainCuboidGbdt(ds, params).cuboid_rows;
  EXPECT_LT(rows4, rows16);
}

TEST(DistributedTest, MatchesSingleNodeModel) {
  // The distributed trainer merges exact per-shard aggregates, so its model
  // must match the single-node factorized model.
  exec::Database db(EngineProfile::DSwap());
  data::TpcdsConfig config;
  config.scale_factor = 0.2;
  config.base_fact_rows = 20000;
  config.num_features = 10;
  Dataset ds = data::MakeTpcds(&db, config);

  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 4;
  params.num_leaves = 4;
  params.learning_rate = 0.3;

  TrainResult single = Train(params, ds);

  core::DistributedConfig dconf;
  dconf.num_workers = 3;
  dconf.network_latency_s = 0;  // don't model time in a correctness test
  core::DistributedTrainer trainer(ds, dconf);
  core::DistributedResult dist = trainer.Train(params);

  ASSERT_EQ(single.model.trees.size(), dist.model.trees.size());
  EXPECT_NEAR(single.model.base_score, dist.model.base_score, 1e-9);
  for (size_t t = 0; t < single.model.trees.size(); ++t) {
    const auto& a = single.model.trees[t];
    const auto& b = dist.model.trees[t];
    ASSERT_EQ(a.nodes.size(), b.nodes.size()) << "tree " << t;
    for (size_t n = 0; n < a.nodes.size(); ++n) {
      EXPECT_EQ(a.nodes[n].feature, b.nodes[n].feature)
          << "tree " << t << " node " << n;
      if (!a.nodes[n].is_leaf) {
        EXPECT_NEAR(a.nodes[n].threshold, b.nodes[n].threshold, 1e-9);
      } else {
        EXPECT_NEAR(a.nodes[n].prediction, b.nodes[n].prediction, 1e-7);
      }
    }
  }
}

TEST(DistributedTest, ShuffleCostGrowsWithWorkers) {
  exec::Database db(EngineProfile::DSwap());
  data::TpcdsConfig config;
  config.scale_factor = 0.1;
  config.base_fact_rows = 10000;
  config.num_features = 6;
  Dataset ds = data::MakeTpcds(&db, config);

  core::TrainParams params;
  params.boosting = "dt";
  params.num_leaves = 4;

  double shuffle1, shuffle4;
  {
    core::DistributedConfig c;
    c.num_workers = 1;
    core::DistributedTrainer t(ds, c);
    shuffle1 = t.Train(params).shuffle_seconds;
  }
  {
    core::DistributedConfig c;
    c.num_workers = 4;
    core::DistributedTrainer t(ds, c);
    shuffle4 = t.Train(params).shuffle_seconds;
  }
  EXPECT_GT(shuffle4, shuffle1);
}

TEST(DistributedTest, RejectsGalaxySchemas) {
  exec::Database db(EngineProfile::DSwap());
  data::ImdbConfig config;
  config.num_movies = 30;
  config.num_persons = 60;
  Dataset ds = data::MakeImdb(&db, config);
  core::DistributedConfig dconf;
  EXPECT_THROW(core::DistributedTrainer(ds, dconf), JbError);
}

}  // namespace
}  // namespace joinboost
