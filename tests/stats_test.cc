// Cost-based optimizer test layer: equal-num-elements histograms, lazy
// column statistics with version-based invalidation, histogram selectivity
// estimation, the DP join enumerator, the normalized-shape plan cache, and
// the end-to-end pin that cost-based planning never changes query or
// training results — only join orders and the planner counters.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/evaluate.h"
#include "core/train.h"
#include "data/generators.h"
#include "exec/engine.h"
#include "graph/join_order.h"
#include "joinboost.h"
#include "plan/plan_cache.h"
#include "sql/parser.h"
#include "stats/histogram.h"
#include "stats/selectivity.h"
#include "stats/stats_manager.h"
#include "storage/table.h"
#include "storage/types.h"
#include "test_util.h"

namespace joinboost {
namespace {

using exec::Database;
using stats::ColumnStats;
using stats::EqualNumElementsHistogram;
using stats::StatsManager;

// ---------------------------------------------------------------------------
// Equal-num-elements histograms.
// ---------------------------------------------------------------------------

TEST(HistogramTest, EmptyColumnEstimatesZero) {
  auto h = EqualNumElementsHistogram::Build({}, 100);
  EXPECT_TRUE(h.buckets().empty());
  EXPECT_EQ(h.EstimateEq(1.0), 0);
  EXPECT_EQ(h.EstimateBelow(1.0), 0);
  EXPECT_EQ(h.total_rows(), 0);
}

TEST(HistogramTest, SingleValueColumn) {
  auto h = EqualNumElementsHistogram::Build({{5.0, 42}}, 100);
  ASSERT_EQ(h.buckets().size(), 1u);
  EXPECT_EQ(h.EstimateEq(5.0), 42);
  EXPECT_EQ(h.EstimateEq(4.0), 0);
  EXPECT_EQ(h.EstimateEq(6.0), 0);
  EXPECT_EQ(h.EstimateBelow(5.0), 0);
  EXPECT_EQ(h.EstimateBelow(6.0), 42);
  EXPECT_EQ(h.total_rows(), 42);
  EXPECT_EQ(h.total_distinct(), 1);
}

TEST(HistogramTest, PointEstimatesAreExactUnderSkewWhenDistinctsFit) {
  // Heavy skew: value v carries 2^v rows. With D <= max_buckets every
  // distinct value owns its own bucket, so equality estimates are exact no
  // matter how skewed the distribution is.
  std::vector<std::pair<double, size_t>> dc;
  for (int v = 0; v < 10; ++v) {
    dc.emplace_back(static_cast<double>(v), static_cast<size_t>(1) << v);
  }
  auto h = EqualNumElementsHistogram::Build(dc, 100);
  EXPECT_EQ(h.buckets().size(), 10u);
  for (int v = 0; v < 10; ++v) {
    EXPECT_EQ(h.EstimateEq(v), static_cast<double>(size_t{1} << v)) << v;
  }
  EXPECT_EQ(h.EstimateEq(3.5), 0);  // between distinct values
  EXPECT_EQ(h.EstimateBelow(3.0), 1 + 2 + 4);
  EXPECT_EQ(h.EstimateBelow(100.0), h.total_rows());
}

TEST(HistogramTest, WideColumnsStayWithinBucketDensityBounds) {
  // 250 distinct values with alternating 1/9 row counts into 100 buckets:
  // estimates are per-bucket averages, so every point estimate must stay
  // within the per-bucket count range, and range estimates stay monotone.
  std::vector<std::pair<double, size_t>> dc;
  for (int v = 0; v < 250; ++v) {
    dc.emplace_back(static_cast<double>(v), (v % 2 == 0) ? 1u : 9u);
  }
  auto h = EqualNumElementsHistogram::Build(dc, 100);
  EXPECT_LE(h.buckets().size(), 100u);
  double total = 0;
  for (const auto& b : h.buckets()) {
    EXPECT_LE(b.min, b.max);
    EXPECT_GE(b.distinct, 1.0);
    total += b.count;
  }
  EXPECT_EQ(total, h.total_rows());
  EXPECT_EQ(h.total_distinct(), 250);
  double prev = 0;
  for (int v = 0; v <= 250; ++v) {
    double below = h.EstimateBelow(v);
    EXPECT_GE(below, prev) << "EstimateBelow not monotone at " << v;
    prev = below;
    if (v < 250) {
      double eq = h.EstimateEq(v);
      EXPECT_GE(eq, 1.0) << v;  // bucket min density
      EXPECT_LE(eq, 9.0) << v;  // bucket max density
    }
  }
  EXPECT_EQ(h.EstimateBelow(1000.0), h.total_rows());
}

// ---------------------------------------------------------------------------
// Column statistics construction.
// ---------------------------------------------------------------------------

TEST(ColumnStatsTest, AllNullIntColumn) {
  auto col = ColumnBuilder(TypeId::kInt64)
                 .AppendInts({kNullInt64, kNullInt64, kNullInt64})
                 .Build();
  ColumnStats s = StatsManager::BuildColumnStats(*col);
  EXPECT_EQ(s.row_count, 3u);
  EXPECT_EQ(s.null_count, 3u);
  EXPECT_EQ(s.distinct_count, 0u);
  EXPECT_EQ(s.null_fraction(), 1.0);
  EXPECT_TRUE(s.histogram.buckets().empty());
}

TEST(ColumnStatsTest, NullDoublesAreExcludedFromTheHistogram) {
  auto col = ColumnBuilder(TypeId::kFloat64)
                 .AppendDoubles({1.5, NullFloat64(), 2.5, NullFloat64()})
                 .Build();
  ColumnStats s = StatsManager::BuildColumnStats(*col);
  EXPECT_EQ(s.row_count, 4u);
  EXPECT_EQ(s.null_count, 2u);
  EXPECT_EQ(s.distinct_count, 2u);
  EXPECT_EQ(s.null_fraction(), 0.5);
  EXPECT_EQ(s.min, 1.5);
  EXPECT_EQ(s.max, 2.5);
  EXPECT_EQ(s.histogram.EstimateEq(1.5), 1);
}

TEST(ColumnStatsTest, StringColumnsHistogramDictionaryCodes) {
  auto col = ColumnBuilder(TypeId::kString)
                 .AppendStrings({"b", "a", "b", "c", "b"})
                 .Build();
  ColumnStats s = StatsManager::BuildColumnStats(*col);
  EXPECT_EQ(s.distinct_count, 3u);
  ASSERT_NE(s.dict, nullptr);
  int64_t code_b = s.dict->Find("b");
  ASSERT_NE(code_b, kNullInt64);
  EXPECT_EQ(s.histogram.EstimateEq(static_cast<double>(code_b)), 3);
  EXPECT_EQ(s.dict->Find("zzz"), kNullInt64);
}

TEST(ColumnStatsTest, EncodedColumnsProduceIdenticalStats) {
  // Frame-of-reference int encoding and dictionary string encoding must not
  // change statistics: BuildColumnStats decodes values first.
  std::vector<int64_t> vals;
  for (int i = 0; i < 500; ++i) vals.push_back(1000 + (i * 7) % 90);
  auto plain = ColumnBuilder(TypeId::kInt64).AppendInts(vals).Build();
  auto encoded = ColumnBuilder(TypeId::kInt64).AppendInts(vals).Build();
  encoded->Encode();
  ASSERT_TRUE(encoded->encoded());
  ColumnStats a = StatsManager::BuildColumnStats(*plain);
  ColumnStats b = StatsManager::BuildColumnStats(*encoded);
  EXPECT_EQ(a.row_count, b.row_count);
  EXPECT_EQ(a.null_count, b.null_count);
  EXPECT_EQ(a.distinct_count, b.distinct_count);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  ASSERT_EQ(a.histogram.buckets().size(), b.histogram.buckets().size());
  for (int64_t v : {1000, 1033, 1089}) {
    EXPECT_EQ(a.histogram.EstimateEq(static_cast<double>(v)),
              b.histogram.EstimateEq(static_cast<double>(v)))
        << v;
  }
}

// ---------------------------------------------------------------------------
// Lazy statistics cache + invalidation.
// ---------------------------------------------------------------------------

TEST(StatsManagerTest, StatsAreCachedUntilThePayloadChanges) {
  TablePtr t = TableBuilder("t").AddInts("x", {1, 2, 3, 4, 5}).Build();
  StatsManager mgr;
  auto s1 = mgr.Get(t, "x");
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->max, 5);
  auto s2 = mgr.Get(t, "x");
  EXPECT_EQ(s1.get(), s2.get()) << "unchanged column rebuilt statistics";

  // ReplaceInts bumps the column version: the cached entry is stale.
  t->column(size_t{0})->ReplaceInts({10, 20, 30});
  auto s3 = mgr.Get(t, "x");
  ASSERT_NE(s3, nullptr);
  EXPECT_NE(s1.get(), s3.get()) << "version bump did not invalidate";
  EXPECT_EQ(s3->max, 30);
  EXPECT_EQ(s3->row_count, 3u);
}

TEST(StatsManagerTest, TableReplacementInvalidatesByIdentity) {
  // CREATE OR REPLACE swaps the whole table under the same name: the cache
  // must notice the new ColumnData identity even at version 0.
  TablePtr t1 = TableBuilder("t").AddInts("x", {1, 2, 3}).Build();
  TablePtr t2 = TableBuilder("t").AddInts("x", {7, 8, 9, 10}).Build();
  StatsManager mgr;
  auto s1 = mgr.Get(t1, "x");
  ASSERT_NE(s1, nullptr);
  EXPECT_EQ(s1->max, 3);
  auto s2 = mgr.Get(t2, "x");
  ASSERT_NE(s2, nullptr);
  EXPECT_EQ(s2->max, 10);
  EXPECT_EQ(s2->row_count, 4u);
}

TEST(StatsManagerTest, SwapPayloadInvalidatesBothColumns) {
  TablePtr t = TableBuilder("t").AddInts("a", {1, 1, 1}).Build();
  TablePtr u = TableBuilder("u").AddInts("b", {9, 9, 9}).Build();
  StatsManager mgr;
  EXPECT_EQ(mgr.Get(t, "a")->max, 1);
  EXPECT_EQ(mgr.Get(u, "b")->max, 9);
  t->column(size_t{0})->SwapPayload(*u->column(size_t{0}));
  EXPECT_EQ(mgr.Get(t, "a")->max, 9);
  EXPECT_EQ(mgr.Get(u, "b")->max, 1);
}

TEST(StatsManagerTest, MissingColumnsReturnNull) {
  TablePtr t = TableBuilder("t").AddInts("x", {1}).Build();
  StatsManager mgr;
  EXPECT_EQ(mgr.Get(t, "nope"), nullptr);
  EXPECT_EQ(mgr.Get(t, size_t{5}), nullptr);
  EXPECT_EQ(mgr.Get(nullptr, "x"), nullptr);
}

TEST(StatsManagerTest, EngineUpdatesInvalidateEstimates) {
  // Through the SQL surface: an UPDATE rewrites the column payload, so the
  // next EXPLAIN must re-derive its estimate from fresh statistics.
  Database db(EngineProfile::DSwap());
  std::vector<int64_t> xs;
  for (int64_t i = 0; i < 10; ++i) xs.push_back(i);
  db.RegisterTable(TableBuilder("t").AddInts("x", xs).Build());
  auto explain_text = [&](const std::string& q) {
    auto t = db.Query(q);
    std::string out;
    for (size_t r = 0; r < t->rows; ++r) {
      out += t->GetValue(r, 0).s;
      out += "\n";
    }
    return out;
  };
  std::string before = explain_text("EXPLAIN SELECT t.x FROM t WHERE t.x > 100");
  EXPECT_NE(before.find("rows~1/10"), std::string::npos) << before;
  db.Execute("UPDATE t SET x = 200");
  std::string after = explain_text("EXPLAIN SELECT t.x FROM t WHERE t.x > 100");
  EXPECT_NE(after.find("rows~10/10"), std::string::npos) << after;
}

// ---------------------------------------------------------------------------
// Histogram selectivity of pushed predicates.
// ---------------------------------------------------------------------------

class SelectivityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // k: 100 rows uniform over 10 values; x: 0.0 .. 9.9; s: skewed strings.
    std::vector<int64_t> k;
    std::vector<double> x;
    std::vector<std::string> s;
    for (int i = 0; i < 100; ++i) {
      k.push_back(i % 10);
      x.push_back(static_cast<double>(i) / 10.0);
      s.push_back(i < 90 ? "hot" : "cold");
    }
    t_ = TableBuilder("t")
             .AddInts("k", k)
             .AddDoubles("x", x)
             .AddStrings("s", s)
             .Build();
  }

  double Sel(const std::string& pred) {
    sql::Statement stmt = sql::Parse("SELECT t.k FROM t WHERE " + pred);
    return stats::ConjunctSelectivity(*stmt.select->where, t_, &mgr_);
  }

  TablePtr t_;
  StatsManager mgr_;
};

TEST_F(SelectivityTest, EqualityIsExactOnLowCardinalityColumns) {
  EXPECT_DOUBLE_EQ(Sel("t.k = 3"), 0.1);
  EXPECT_DOUBLE_EQ(Sel("t.k = 99"), 0.0);   // absent value
  EXPECT_DOUBLE_EQ(Sel("t.k <> 3"), 0.9);
}

TEST_F(SelectivityTest, RangesInterpolate) {
  EXPECT_DOUBLE_EQ(Sel("t.k < 5"), 0.5);
  EXPECT_DOUBLE_EQ(Sel("t.k <= 4"), 0.5);
  EXPECT_DOUBLE_EQ(Sel("t.k >= 5"), 0.5);
  EXPECT_NEAR(Sel("t.x < 5.0"), 0.5, 0.02);
  // Flipped comparisons normalize: 5 > t.k  ==  t.k < 5.
  EXPECT_DOUBLE_EQ(Sel("5 > t.k"), 0.5);
}

TEST_F(SelectivityTest, StringEqualityUsesTheDictionary) {
  EXPECT_DOUBLE_EQ(Sel("t.s = 'hot'"), 0.9);
  EXPECT_DOUBLE_EQ(Sel("t.s = 'cold'"), 0.1);
  EXPECT_DOUBLE_EQ(Sel("t.s = 'absent'"), 0.0);
  EXPECT_DOUBLE_EQ(Sel("t.s <> 'hot'"), 0.1);
}

TEST_F(SelectivityTest, InListsSumPerValueEstimates) {
  EXPECT_DOUBLE_EQ(Sel("t.k IN (1, 2, 3)"), 0.3);
  EXPECT_DOUBLE_EQ(Sel("t.k NOT IN (1, 2, 3)"), 0.7);
  EXPECT_DOUBLE_EQ(Sel("t.k IN (77, 88)"), 0.0);
}

TEST_F(SelectivityTest, NullPredicates) {
  EXPECT_DOUBLE_EQ(Sel("t.k IS NULL"), 0.0);  // no NULLs in the column
  EXPECT_DOUBLE_EQ(Sel("t.k IS NOT NULL"), 1.0);
}

TEST_F(SelectivityTest, ConjunctionsAndDisjunctionsCombine) {
  EXPECT_DOUBLE_EQ(Sel("t.k = 3 AND t.k < 5"), 0.05);
  EXPECT_DOUBLE_EQ(Sel("t.k = 3 OR t.k = 4"), 0.2);
  EXPECT_DOUBLE_EQ(Sel("NOT t.k = 3"), 0.9);
}

TEST_F(SelectivityTest, UnsupportedShapesFallBackToHeuristics) {
  EXPECT_EQ(Sel("t.k = t.k"), -1.0);           // no literal side
  EXPECT_EQ(Sel("t.k + 1 = 3"), -1.0);          // computed column side
  EXPECT_EQ(Sel("t.missing = 3"), -1.0);        // unknown column
  // Strings support only equality classes — ranges are not estimable.
  EXPECT_EQ(Sel("t.s < 'hot'"), -1.0);
}

TEST_F(SelectivityTest, JoinKeyDistinctCounts) {
  EXPECT_EQ(stats::JoinKeyDistinct(t_, "k", &mgr_), 10);
  EXPECT_EQ(stats::JoinKeyDistinct(t_, "missing", &mgr_), -1);
}

// ---------------------------------------------------------------------------
// DP join enumeration.
// ---------------------------------------------------------------------------

TEST(JoinOrderTest, PicksTheCheapestFeasibleOrder) {
  // anchor 1000 rows; A: neutral (50 rows, 1/50), B: selective dimension
  // (1 row, 1/5), C: neutral (200 rows, 1/200). Joining B first shrinks
  // every later intermediate: best order is B, A, C.
  std::vector<graph::JoinOrderClause> clauses(3);
  clauses[0].rows = 50;
  clauses[0].selectivity = 1.0 / 50;
  clauses[1].rows = 1;
  clauses[1].selectivity = 1.0 / 5;
  clauses[2].rows = 200;
  clauses[2].selectivity = 1.0 / 200;
  graph::JoinOrderResult r = graph::EnumerateJoinOrder(1000, clauses);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.order, (std::vector<int>{1, 0, 2}));
  EXPECT_DOUBLE_EQ(r.cost, 200 + 200 + 200);
}

TEST(JoinOrderTest, DependenciesForceOrder) {
  // Clause 1 references clause 0's relation: even though 1 is far cheaper,
  // it cannot be placed before 0.
  std::vector<graph::JoinOrderClause> clauses(2);
  clauses[0].rows = 100;
  clauses[0].selectivity = 1.0;
  clauses[1].rows = 1;
  clauses[1].selectivity = 0.001;
  clauses[1].needs = {0};
  graph::JoinOrderResult r = graph::EnumerateJoinOrder(10, clauses);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.order, (std::vector<int>{0, 1}));
}

TEST(JoinOrderTest, SemiJoinsNeverSatisfyDependencies) {
  // Clause 0 is a semi join: its columns vanish from the output, so clause 1
  // referencing them can never be placed — no feasible complete order.
  std::vector<graph::JoinOrderClause> clauses(2);
  clauses[0].rows = 10;
  clauses[0].semi_or_anti = true;
  clauses[1].rows = 10;
  clauses[1].needs = {0};
  graph::JoinOrderResult r = graph::EnumerateJoinOrder(100, clauses);
  EXPECT_FALSE(r.valid);
}

TEST(JoinOrderTest, ClauseCapFallsBackToGreedy) {
  std::vector<graph::JoinOrderClause> clauses(graph::kMaxDpClauses + 1);
  for (auto& c : clauses) c.rows = 2;
  EXPECT_FALSE(graph::EnumerateJoinOrder(10, clauses).valid);
  EXPECT_FALSE(graph::EnumerateJoinOrder(10, {}).valid);
}

TEST(JoinOrderTest, TieBreaksAreDeterministic) {
  // Identical clauses: every permutation costs the same; the enumerator must
  // keep the lowest-index-first order for plan stability.
  std::vector<graph::JoinOrderClause> clauses(4);
  for (auto& c : clauses) {
    c.rows = 10;
    c.selectivity = 0.1;
  }
  graph::JoinOrderResult r = graph::EnumerateJoinOrder(100, clauses);
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.order, (std::vector<int>{0, 1, 2, 3}));
}

// ---------------------------------------------------------------------------
// Plan cache keying + engine counters.
// ---------------------------------------------------------------------------

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(EngineProfile::DSwap());
    std::vector<int64_t> k;
    std::vector<double> v;
    for (int i = 0; i < 50; ++i) {
      k.push_back(i % 5);
      v.push_back(i * 0.5);
    }
    db_->RegisterTable(TableBuilder("t").AddInts("k", k).AddDoubles("v", v).Build());
    db_->RegisterTable(
        TableBuilder("t_other").AddInts("k", k).AddDoubles("v", v).Build());
    db_->RegisterTable(TableBuilder("shaped")
                           .AddInts("k", {1, 2})
                           .AddInts("extra", {0, 0})
                           .Build());
  }

  std::string Key(const std::string& sql) {
    sql::Statement stmt = sql::Parse(sql);
    return plan::PlanCache::ShapeKey(*stmt.select, db_->catalog());
  }

  std::unique_ptr<Database> db_;
};

TEST_F(PlanCacheTest, ComparisonLiteralsAreParameters) {
  EXPECT_EQ(Key("SELECT t.k FROM t WHERE t.v > 0.5"),
            Key("SELECT t.k FROM t WHERE t.v > 123.75"));
  EXPECT_NE(Key("SELECT t.k FROM t WHERE t.v > 0.5"),
            Key("SELECT t.k FROM t WHERE t.v < 0.5"));
  EXPECT_NE(Key("SELECT t.k FROM t WHERE t.v > 0.5"),
            Key("SELECT t.k FROM t WHERE t.k > 1"));
}

TEST_F(PlanCacheTest, LiteralArithmeticIsNotAParameter) {
  // 1 + 1 can constant-fold; folding depends on the values, so they must
  // stay in the key.
  EXPECT_NE(Key("SELECT t.k FROM t WHERE 1 + 1 = 2"),
            Key("SELECT t.k FROM t WHERE 1 + 2 = 2"));
}

TEST_F(PlanCacheTest, SameShapeTablesShareAKeyAcrossNames) {
  // The trainer materializes temp tables under counter-suffixed names; only
  // the schema fingerprint enters the key, so those plans are shared.
  EXPECT_EQ(Key("SELECT t.k FROM t WHERE t.v > 1"),
            Key("SELECT t_other.k FROM t_other WHERE t_other.v > 1"));
  EXPECT_NE(Key("SELECT t.k FROM t"), Key("SELECT shaped.k FROM shaped"));
}

TEST_F(PlanCacheTest, InListElementsAreParametersButCountIsNot) {
  EXPECT_EQ(Key("SELECT t.k FROM t WHERE t.k IN (1, 2)"),
            Key("SELECT t.k FROM t WHERE t.k IN (3, 4)"));
  EXPECT_NE(Key("SELECT t.k FROM t WHERE t.k IN (1, 2)"),
            Key("SELECT t.k FROM t WHERE t.k IN (1, 2, 3)"));
}

TEST_F(PlanCacheTest, EngineCountsHitsAndMisses) {
  plan::PlanStats before = db_->PlanStatsTotals();
  db_->Query("SELECT t.k FROM t WHERE t.v > 1.0");
  db_->Query("SELECT t.k FROM t WHERE t.v > 2.0");  // same shape: hit
  db_->Query("SELECT SUM(t.v) AS s FROM t");        // new shape: miss
  plan::PlanStats d = db_->PlanStatsTotals() - before;
  EXPECT_EQ(d.queries_planned, 3u);
  EXPECT_EQ(d.plan_cache_misses, 2u);
  EXPECT_EQ(d.plan_cache_hits, 1u);
}

TEST_F(PlanCacheTest, ExplainNeverTouchesTheCache) {
  plan::PlanStats before = db_->PlanStatsTotals();
  db_->Query("EXPLAIN SELECT t.k FROM t WHERE t.v > 1.0");
  db_->Query("EXPLAIN SELECT t.k FROM t WHERE t.v > 1.0");
  plan::PlanStats d = db_->PlanStatsTotals() - before;
  EXPECT_EQ(d.plan_cache_hits, 0u);
  EXPECT_EQ(d.plan_cache_misses, 0u);
}

TEST_F(PlanCacheTest, GreedyProfileNeverConsultsTheCache) {
  EngineProfile p = EngineProfile::DSwap();
  p.cost_based_planner = false;
  Database db(p);
  db.RegisterTable(TableBuilder("t").AddInts("k", {1, 2, 3}).Build());
  db.Query("SELECT t.k FROM t WHERE t.k > 1");
  db.Query("SELECT t.k FROM t WHERE t.k > 1");
  plan::PlanStats s = db.PlanStatsTotals();
  EXPECT_EQ(s.queries_planned, 2u);
  EXPECT_EQ(s.plan_cache_hits, 0u);
  EXPECT_EQ(s.plan_cache_misses, 0u);
  EXPECT_EQ(s.joins_reordered_dp, 0u);
}

TEST(PlanCacheUnitTest, InsertLookupAndCap) {
  plan::PlanCache cache;
  plan::CachedPlan in;
  in.order = {2, 0, 1};
  in.reordered = true;
  in.reordered_dp = true;
  cache.Insert("key", in);
  plan::CachedPlan out;
  ASSERT_TRUE(cache.Lookup("key", &out));
  EXPECT_EQ(out.order, in.order);
  EXPECT_TRUE(out.reordered_dp);
  EXPECT_FALSE(cache.Lookup("other", &out));
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// Greedy fallback (satellite: post-filter estimates + the DP clause cap).
// ---------------------------------------------------------------------------

std::string ExplainText(Database* db, const std::string& q) {
  auto t = db->Query(q);
  std::string out;
  for (size_t r = 0; r < t->rows; ++r) {
    out += t->GetValue(r, 0).s;
    out += "\n";
  }
  return out;
}

TEST(GreedyReorderTest, UsesPostFilterEstimatesNotRawRowCounts) {
  // dim_big has 5x the rows of dim_small, but the equality filter on it cuts
  // the heuristic estimate to 10%: 100 < 200, so the greedy reorder must
  // join the *filtered* big dimension first. Ordering by raw catalog row
  // counts would pick dim_small.
  EngineProfile p = EngineProfile::DSwap();
  p.cost_based_planner = false;  // heuristic/greedy path under test
  Database db(p);
  std::vector<int64_t> fk1, fk2;
  for (int i = 0; i < 400; ++i) {
    fk1.push_back(i % 1000);
    fk2.push_back(i % 200);
  }
  std::vector<int64_t> bk, bb, sk;
  for (int i = 0; i < 1000; ++i) {
    bk.push_back(i);
    bb.push_back(i % 7);
  }
  for (int i = 0; i < 200; ++i) sk.push_back(i);
  db.RegisterTable(
      TableBuilder("fact").AddInts("k1", fk1).AddInts("k2", fk2).Build());
  db.RegisterTable(
      TableBuilder("dim_big").AddInts("k1", bk).AddInts("b", bb).Build());
  db.RegisterTable(TableBuilder("dim_small").AddInts("k2", sk).Build());
  std::string text = ExplainText(
      &db,
      "EXPLAIN SELECT COUNT(*) AS c FROM fact "
      "JOIN dim_small ON fact.k2 = dim_small.k2 "
      "JOIN dim_big ON fact.k1 = dim_big.k1 WHERE dim_big.b = 3");
  size_t big = text.find("Scan dim_big");
  size_t small = text.find("Scan dim_small");
  ASSERT_NE(big, std::string::npos) << text;
  ASSERT_NE(small, std::string::npos) << text;
  EXPECT_LT(big, small) << "filtered big dimension not joined first:\n" << text;
  EXPECT_NE(text.find("joins-reordered"), std::string::npos) << text;
  EXPECT_EQ(text.find("joins-reordered-dp"), std::string::npos)
      << "greedy profile must not run the DP enumerator:\n"
      << text;
}

TEST(GreedyReorderTest, DpCapFallsBackToGreedyBeyondTwelveClauses) {
  // 13 join clauses exceed graph::kMaxDpClauses: the cost-based planner must
  // fall back to the greedy ordering (joins_reordered without _dp).
  Database db(EngineProfile::DSwap());
  const int kDims = 13;
  TableBuilder fact("fact");
  std::vector<int64_t> v(100, 1);
  for (int d = 0; d < kDims; ++d) {
    int64_t keys = 14 - d;  // descending sizes: greedy reverses the order
    std::vector<int64_t> fk(100);
    for (int i = 0; i < 100; ++i) fk[static_cast<size_t>(i)] = i % keys;
    fact.AddInts("k" + std::to_string(d), fk);
    std::vector<int64_t> dk(static_cast<size_t>(keys));
    for (int64_t i = 0; i < keys; ++i) dk[static_cast<size_t>(i)] = i;
    db.RegisterTable(TableBuilder("d" + std::to_string(d))
                         .AddInts("k" + std::to_string(d), dk)
                         .Build());
  }
  fact.AddInts("v", v);
  db.RegisterTable(fact.Build());
  std::string sql = "SELECT SUM(fact.v) AS s FROM fact";
  for (int d = 0; d < kDims; ++d) {
    std::string n = std::to_string(d);
    sql += " JOIN d" + n + " ON fact.k" + n + " = d" + n + ".k" + n;
  }
  plan::PlanStats before = db.PlanStatsTotals();
  auto t = db.Query(sql);
  ASSERT_EQ(t->rows, 1u);
  EXPECT_EQ(t->GetValue(0, 0).AsDouble(), 100.0);
  plan::PlanStats d = db.PlanStatsTotals() - before;
  EXPECT_EQ(d.joins_reordered, 1u) << "greedy fallback did not reorder";
  EXPECT_EQ(d.joins_reordered_dp, 0u) << "DP ran beyond its clause cap";
}

// ---------------------------------------------------------------------------
// End-to-end pin: a full Favorita gbdt train is bit-identical with the
// cost-based planner on or off (and across thread counts), while the DP
// enumerator genuinely reorders joins and the plan cache carries the
// repeated trainer shapes.
// ---------------------------------------------------------------------------

TEST(CostBasedTrainTest, FavoritaTrainIsBitIdenticalAndCacheEffective) {
  struct Config {
    const char* label;
    bool use_planner;
    bool cost_based;
    int threads;
  };
  const Config configs[] = {
      {"cost-based x1", true, true, 1},
      {"cost-based x4", true, true, 4},
      {"greedy x1", true, false, 1},
      {"planner-off x1", false, false, 1},
  };
  std::vector<std::string> models;
  std::vector<std::vector<double>> predictions;
  plan::PlanStats cost_stats;
  for (const Config& c : configs) {
    EngineProfile p = EngineProfile::DSwap();
    p.use_planner = c.use_planner;
    p.cost_based_planner = c.cost_based;
    p.exec_threads = c.threads;
    Database db(p);
    Dataset ds = data::MakeFavorita(&db, test_util::TinyFavorita());
    core::TrainParams params;
    params.boosting = "gbdt";
    params.num_iterations = 5;
    params.num_leaves = 8;
    params.learning_rate = 0.2;
    TrainResult res = Train(params, ds);
    models.push_back(res.model.ToString());
    core::JoinedEval eval = core::MaterializeJoin(ds);
    std::vector<double> preds(eval.rows());
    for (size_t r = 0; r < eval.rows(); ++r) {
      preds[r] = eval.Predict(res.model, r);
    }
    predictions.push_back(std::move(preds));
    if (c.cost_based && c.threads == 1) cost_stats = res.plan_stats;
  }
  for (size_t i = 1; i < models.size(); ++i) {
    EXPECT_EQ(models[0], models[i])
        << "model diverged under config " << configs[i].label;
    ASSERT_EQ(predictions[0].size(), predictions[i].size());
    for (size_t r = 0; r < predictions[0].size(); ++r) {
      ASSERT_EQ(predictions[0][r], predictions[i][r])
          << "prediction diverged at row " << r << " under config "
          << configs[i].label;
    }
  }
  // The DP enumerator must genuinely fire on the trainer's multi-relation
  // queries (this pins the historical joins_reordered: 0 gap on Favorita).
  EXPECT_GT(cost_stats.joins_reordered_dp, 0u)
      << "DP never reordered a training query";
  // The trainer repeats shapes across leaves and iterations with only the
  // split thresholds changing — the shape cache must carry >90% of planning.
  size_t consulted = cost_stats.plan_cache_hits + cost_stats.plan_cache_misses;
  ASSERT_GT(consulted, 0u);
  EXPECT_EQ(consulted, cost_stats.queries_planned);
  double hit_rate = static_cast<double>(cost_stats.plan_cache_hits) /
                    static_cast<double>(consulted);
  EXPECT_GT(hit_rate, 0.9) << "hits " << cost_stats.plan_cache_hits << " / "
                           << consulted;
}

}  // namespace
}  // namespace joinboost
