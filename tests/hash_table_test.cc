// Unit coverage for the flat hash infrastructure (src/exec/hash_table.h):
// slot-directory growth, tag collisions, duplicate-key chains, empty and
// all-duplicate inputs, and the insertion-order guarantees the engine's
// determinism contract rests on.

#include "exec/hash_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "util/rng.h"

namespace joinboost {
namespace exec {
namespace hash {
namespace {

TEST(FlatHashTableTest, FindOnEmptyTableMisses) {
  FlatHashTable t;
  EXPECT_EQ(t.Find(0), FlatHashTable::kNoSlot);
  EXPECT_EQ(t.Find(0xDEADBEEFULL), FlatHashTable::kNoSlot);
  EXPECT_EQ(t.size(), 0u);
}

TEST(FlatHashTableTest, InsertThenFindRoundTrips) {
  FlatHashTable t;
  t.Init(4);
  bool inserted = false;
  size_t s1 = t.FindOrInsert(42, &inserted);
  EXPECT_TRUE(inserted);
  t.set_head(s1, 7);
  size_t s2 = t.FindOrInsert(42, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(t.Find(42), s1);
  EXPECT_EQ(t.head(s1), 7u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlatHashTableTest, GrowthPreservesEveryEntry) {
  // Init for 4 expected keys (16 slots), insert far more: the directory
  // must double repeatedly and keep every (hash -> head/tail) association.
  FlatHashTable t;
  t.Init(4);
  const size_t kKeys = 10000;
  Rng rng(7);
  std::vector<uint64_t> hashes;
  for (size_t i = 0; i < kKeys; ++i) hashes.push_back(rng.Next());
  for (size_t i = 0; i < kKeys; ++i) {
    bool inserted = false;
    size_t slot = t.FindOrInsert(hashes[i], &inserted);
    ASSERT_TRUE(inserted) << "hash " << i;
    t.set_head(slot, static_cast<uint32_t>(i));
    t.set_tail(slot, static_cast<uint32_t>(i + 1));
  }
  EXPECT_EQ(t.size(), kKeys);
  EXPECT_GE(t.capacity() * 7, kKeys * 8) << "load factor above 7/8";
  for (size_t i = 0; i < kKeys; ++i) {
    size_t slot = t.Find(hashes[i]);
    ASSERT_NE(slot, FlatHashTable::kNoSlot) << "hash " << i << " lost";
    EXPECT_EQ(t.head(slot), static_cast<uint32_t>(i));
    EXPECT_EQ(t.tail(slot), static_cast<uint32_t>(i + 1));
  }
}

TEST(FlatHashTableTest, TagAndSlotCollisionsAreResolvedByFullHash) {
  // Hashes that agree on the slot index (low bits) AND the 8-bit tag (top
  // byte) but differ in the middle bits: the directory must fall through to
  // the full 64-bit compare and keep all of them apart.
  FlatHashTable t;
  t.Init(4);  // 16 slots: mask 0xF
  std::vector<uint64_t> colliders;
  for (uint64_t mid = 1; mid <= 6; ++mid) {
    colliders.push_back(0xAB00000000000003ULL | (mid << 16));
  }
  for (size_t i = 0; i < colliders.size(); ++i) {
    bool inserted = false;
    size_t slot = t.FindOrInsert(colliders[i], &inserted);
    ASSERT_TRUE(inserted) << "collider " << i << " merged with a neighbor";
    t.set_head(slot, static_cast<uint32_t>(i));
  }
  EXPECT_EQ(t.size(), colliders.size());
  for (size_t i = 0; i < colliders.size(); ++i) {
    size_t slot = t.Find(colliders[i]);
    ASSERT_NE(slot, FlatHashTable::kNoSlot);
    EXPECT_EQ(t.head(slot), static_cast<uint32_t>(i));
  }
  // A same-slot same-tag hash that was never inserted must still miss.
  EXPECT_EQ(t.Find(0xAB00000000000003ULL | (99ULL << 16)),
            FlatHashTable::kNoSlot);
}

TEST(JoinHashTableTest, EmptyBuildProbesToNothing) {
  JoinHashTable t;
  t.Build(nullptr, 0);
  EXPECT_EQ(t.Probe(123), kInvalidIndex);
  EXPECT_EQ(t.num_keys(), 0u);
}

std::vector<uint32_t> Chain(const JoinHashTable& t, uint64_t h) {
  std::vector<uint32_t> rows;
  for (uint32_t r = t.Probe(h); r != kInvalidIndex; r = t.Next(r)) {
    rows.push_back(r);
  }
  return rows;
}

TEST(JoinHashTableTest, DuplicateKeyChainsKeepInsertionOrder) {
  // Rows 0..11 alternating over three key hashes: every chain must
  // enumerate its rows in ascending (insertion) order.
  std::vector<uint64_t> hashes;
  for (uint32_t r = 0; r < 12; ++r) hashes.push_back(1000 + r % 3);
  JoinHashTable t;
  t.Build(hashes.data(), hashes.size());
  EXPECT_EQ(t.num_keys(), 3u);
  EXPECT_EQ(Chain(t, 1000), (std::vector<uint32_t>{0, 3, 6, 9}));
  EXPECT_EQ(Chain(t, 1001), (std::vector<uint32_t>{1, 4, 7, 10}));
  EXPECT_EQ(Chain(t, 1002), (std::vector<uint32_t>{2, 5, 8, 11}));
  EXPECT_EQ(Chain(t, 999), (std::vector<uint32_t>{}));
}

TEST(JoinHashTableTest, AllDuplicateInputBuildsOneFullChain) {
  std::vector<uint64_t> hashes(257, 0xFEEDULL);
  JoinHashTable t;
  t.Build(hashes.data(), hashes.size());
  EXPECT_EQ(t.num_keys(), 1u);
  std::vector<uint32_t> chain = Chain(t, 0xFEEDULL);
  ASSERT_EQ(chain.size(), hashes.size());
  for (uint32_t r = 0; r < chain.size(); ++r) EXPECT_EQ(chain[r], r);
}

TEST(JoinHashTableTest, PartitionedBuildMatchesSerialChains) {
  // Partition rows by h % P (ascending within each partition, like
  // PartitionRowsByHash), build per-partition tables through one shared
  // next[] array, and verify each key's chain equals the serial build's.
  Rng rng(11);
  const size_t kRows = 5000, kKeys = 97;
  std::vector<uint64_t> hashes(kRows);
  for (auto& h : hashes) h = SplitMix64(rng.NextInt(0, kKeys - 1));
  JoinHashTable serial;
  serial.Build(hashes.data(), kRows);
  for (size_t P : {2, 3, 8}) {
    std::vector<std::vector<uint32_t>> prows(P);
    for (uint32_t r = 0; r < kRows; ++r) {
      prows[hashes[r] % P].push_back(r);
    }
    std::vector<uint32_t> shared_next(kRows);
    std::vector<JoinHashTable> parts(P);
    for (size_t p = 0; p < P; ++p) {
      parts[p].BuildPartition(hashes.data(), prows[p].data(), prows[p].size(),
                              shared_next.data());
    }
    for (uint64_t k = 0; k < kKeys; ++k) {
      uint64_t h = SplitMix64(k);
      EXPECT_EQ(Chain(parts[h % P], h), Chain(serial, h))
          << "P=" << P << " key " << k;
    }
  }
}

TEST(JoinHashTableTest, MatchesUnorderedMapReference) {
  Rng rng(13);
  const size_t kRows = 20000;
  std::vector<uint64_t> hashes(kRows);
  std::unordered_map<uint64_t, std::vector<uint32_t>> reference;
  for (uint32_t r = 0; r < kRows; ++r) {
    hashes[r] = SplitMix64(rng.NextInt(0, 499));
    reference[hashes[r]].push_back(r);
  }
  JoinHashTable t;
  t.Build(hashes.data(), kRows);
  EXPECT_EQ(t.num_keys(), reference.size());
  for (const auto& [h, rows] : reference) {
    EXPECT_EQ(Chain(t, h), rows) << "hash " << h;
  }
}

TEST(GroupHashTableTest, GroupIdsFollowFirstOccurrenceOrder) {
  // Keys via identity hash; eq resolves by the key value itself.
  std::vector<uint64_t> keys = {5, 9, 5, 2, 9, 9, 5, 2};
  GroupHashTable t(keys.size());
  std::vector<uint64_t> rep_keys;
  std::vector<uint32_t> gids;
  for (uint64_t k : keys) {
    uint32_t gid = t.FindOrAdd(SplitMix64(k), [&](uint32_t g) {
      return rep_keys[g] == k;
    });
    if (gid == rep_keys.size()) rep_keys.push_back(k);
    gids.push_back(gid);
  }
  EXPECT_EQ(t.num_groups(), 3u);
  EXPECT_EQ(rep_keys, (std::vector<uint64_t>{5, 9, 2}));
  EXPECT_EQ(gids, (std::vector<uint32_t>{0, 1, 0, 2, 1, 1, 0, 2}));
}

TEST(GroupHashTableTest, SameHashDifferentKeysChainAndStayDistinct) {
  // Force full 64-bit hash collisions: all keys hash to 77. The chain walk
  // must consult eq() and keep one group per distinct key.
  std::vector<uint64_t> keys = {1, 2, 3, 1, 2, 3, 1};
  GroupHashTable t(keys.size());
  std::vector<uint64_t> rep_keys;
  std::vector<uint32_t> gids;
  for (uint64_t k : keys) {
    uint32_t gid =
        t.FindOrAdd(77, [&](uint32_t g) { return rep_keys[g] == k; });
    if (gid == rep_keys.size()) rep_keys.push_back(k);
    gids.push_back(gid);
  }
  EXPECT_EQ(t.num_groups(), 3u);
  EXPECT_EQ(gids, (std::vector<uint32_t>{0, 1, 2, 0, 1, 2, 0}));
  EXPECT_GT(t.chain_follows(), 0u);
}

TEST(GroupHashTableTest, GrowthKeepsGroupsDistinct) {
  GroupHashTable t(0);  // minimal directory; must grow many times
  const uint64_t kDistinct = 5000;
  std::vector<uint64_t> rep_keys;
  for (uint64_t pass = 0; pass < 2; ++pass) {
    for (uint64_t k = 0; k < kDistinct; ++k) {
      uint32_t gid = t.FindOrAdd(SplitMix64(k), [&](uint32_t g) {
        return rep_keys[g] == k;
      });
      if (gid == rep_keys.size()) rep_keys.push_back(k);
      ASSERT_EQ(gid, static_cast<uint32_t>(k)) << "pass " << pass;
    }
  }
  EXPECT_EQ(t.num_groups(), kDistinct);
}

TEST(ValueSetTest, EmptySetContainsNothing) {
  ValueSet s;
  EXPECT_FALSE(s.Contains(0));
  EXPECT_FALSE(s.Contains(42));
  EXPECT_EQ(s.size(), 0u);
}

TEST(ValueSetTest, InsertIsIdempotentAndGrows) {
  ValueSet s(2);
  Rng rng(17);
  std::vector<uint64_t> values;
  for (size_t i = 0; i < 3000; ++i) values.push_back(rng.Next());
  for (uint64_t v : values) {
    s.Insert(v);
    s.Insert(v);  // duplicate insert must not double-count
  }
  EXPECT_EQ(s.size(), values.size());
  for (uint64_t v : values) EXPECT_TRUE(s.Contains(v));
  Rng other(18);
  size_t false_hits = 0;
  std::sort(values.begin(), values.end());
  for (size_t i = 0; i < 1000; ++i) {
    uint64_t v = other.Next();
    if (!std::binary_search(values.begin(), values.end(), v) &&
        s.Contains(v)) {
      ++false_hits;
    }
  }
  EXPECT_EQ(false_hits, 0u);
}

TEST(SlotCountTest, PowerOfTwoAndHalfLoadBound) {
  for (size_t n : {0u, 1u, 7u, 8u, 9u, 100u, 4096u, 4097u}) {
    size_t cap = SlotCountFor(n);
    EXPECT_GE(cap, 16u);
    EXPECT_EQ(cap & (cap - 1), 0u) << "not a power of two for n=" << n;
    EXPECT_GE(cap, 2 * n) << "load factor above 1/2 for n=" << n;
  }
}

}  // namespace
}  // namespace hash
}  // namespace exec
}  // namespace joinboost
