#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/check.h"
#include "util/error.h"
#include "util/fault_injection.h"
#include "util/hash.h"

#include "storage/catalog.h"
#include "storage/column.h"
#include "storage/compression.h"
#include "storage/mvcc.h"
#include "storage/table.h"
#include "storage/wal.h"
#include "test_util.h"
#include "util/rng.h"

namespace joinboost {
namespace {

class CompressionRoundtripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompressionRoundtripTest, Ints) {
  Rng rng(GetParam());
  std::vector<int64_t> values;
  size_t n = 1 + rng.NextBounded(20000);
  for (size_t i = 0; i < n; ++i) {
    // Mixed ranges, including negatives and the null sentinel-adjacent zone.
    switch (rng.NextBounded(3)) {
      case 0:
        values.push_back(rng.NextInt(-5, 5));
        break;
      case 1:
        values.push_back(rng.NextInt(0, 1000000));
        break;
      default:
        values.push_back(rng.NextInt(-1000000000, 1000000000));
    }
  }
  auto enc = compression::EncodeInts(values);
  EXPECT_EQ(compression::DecodeInts(enc), values);
  // Small-range data must actually compress.
  std::vector<int64_t> small(10000);
  for (auto& v : small) v = rng.NextInt(0, 15);
  auto enc_small = compression::EncodeInts(small);
  EXPECT_LT(enc_small.ByteSize(), small.size() * 8 / 4);
}

TEST_P(CompressionRoundtripTest, Doubles) {
  Rng rng(GetParam() ^ 0x5555);
  std::vector<double> values;
  size_t n = 1 + rng.NextBounded(20000);
  for (size_t i = 0; i < n; ++i) {
    values.push_back(rng.NextGaussian() * 1000);
  }
  values.push_back(0.0);
  values.push_back(-0.0);
  values.push_back(1e308);
  auto enc = compression::EncodeDoubles(values);
  std::vector<double> out = compression::DecodeDoubles(enc);
  ASSERT_EQ(out.size(), values.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(std::memcmp(&out[i], &values[i], 8), 0) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressionRoundtripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ColumnTest, EncodeDecodePreservesData) {
  auto col = ColumnBuilder(TypeId::kInt64).AppendInts({5, 6, 7, 8}).Build();
  col->Encode();
  EXPECT_TRUE(col->encoded());
  EXPECT_EQ(col->DecodeInts(), (std::vector<int64_t>{5, 6, 7, 8}));
  col->Decode();
  EXPECT_FALSE(col->encoded());
  EXPECT_EQ(*col->PlainInts(), (std::vector<int64_t>{5, 6, 7, 8}));
}

TEST(ColumnTest, SwapPayloadIsPointerExchange) {
  auto a = ColumnBuilder(TypeId::kFloat64).AppendDoubles({1, 2, 3}).Build();
  auto b = ColumnBuilder(TypeId::kFloat64).AppendDoubles({9, 8, 7}).Build();
  const void* a_payload = a->PlainDoubles().get();
  a->SwapPayload(*b);
  EXPECT_EQ(b->PlainDoubles().get(), a_payload);  // no copy happened
  EXPECT_EQ((*a->PlainDoubles())[0], 9);
}

TEST(ColumnTest, SwapRejectsTypeMismatch) {
  auto a = ColumnBuilder(TypeId::kFloat64).AppendDoubles({1}).Build();
  auto b = ColumnBuilder(TypeId::kInt64).AppendInts({1}).Build();
  EXPECT_THROW(a->SwapPayload(*b), JbError);
}

TEST(ColumnTest, DictionaryStrings) {
  auto col =
      ColumnBuilder(TypeId::kString).AppendStrings({"x", "y", "x"}).Build();
  EXPECT_EQ(col->dict()->size(), 2u);
  EXPECT_EQ(col->GetValue(0).s, "x");
  EXPECT_EQ(col->GetValue(2).i, col->GetValue(0).i);
}

TEST(TableTest, SchemaValidation) {
  EXPECT_THROW(
      Table("t", Schema({{"a", TypeId::kInt64}}),
            {ColumnBuilder(TypeId::kFloat64).AppendDoubles({1.0}).Build()}),
      JbError);  // type mismatch
  auto ok = TableBuilder("t").AddInts("a", {1, 2}).Build();
  EXPECT_EQ(ok->num_rows(), 2u);
  EXPECT_THROW(ok->column("nope"), JbError);
}

TEST(CatalogTest, RegisterDropPrefix) {
  Catalog cat;
  cat.Register(TableBuilder("jb_a").AddInts("x", {1}).Build());
  cat.Register(TableBuilder("jb_b").AddInts("x", {1}).Build());
  cat.Register(TableBuilder("user").AddInts("x", {1}).Build());
  EXPECT_EQ(cat.ListTables().size(), 3u);
  cat.DropPrefix("jb_");
  EXPECT_EQ(cat.ListTables().size(), 1u);
  EXPECT_TRUE(cat.Exists("user"));
  EXPECT_THROW(cat.Drop("jb_a"), JbError);
  cat.DropIfExists("jb_a");  // no-throw
}

TEST(WalTest, ChecksumsVerifyAfterWrites) {
  WriteAheadLog wal(/*spill_to_disk=*/false);
  wal.LogDoubles("f", "s", {0, 2}, {1.5, 2.5});
  wal.LogInts("f", "d", {}, {1, 2, 3});
  EXPECT_EQ(wal.num_records(), 2u);
  EXPECT_EQ(wal.VerifyAll(), 2u);
  EXPECT_GT(wal.bytes_written(), 0u);
}

TEST(WalTest, DiskSpillAndTruncate) {
  WriteAheadLog wal(/*spill_to_disk=*/true);
  std::vector<double> big(10000, 3.14);
  wal.LogDoubles("f", "s", {}, big);
  EXPECT_EQ(wal.VerifyAll(), 1u);
  wal.Truncate();
  EXPECT_EQ(wal.num_records(), 0u);
}

TEST(WalTest, DiskSpillToExplicitPath) {
  // Same as above but through the caller-supplied-path branch.
  test_util::TempDir tmp;
  std::string path = tmp.File("wal.bin");
  std::vector<double> big(10000, 2.71);
  {
    WriteAheadLog wal(/*spill_to_disk=*/true, path);
    wal.LogDoubles("f", "s", {}, big);
    EXPECT_EQ(wal.VerifyAll(), 1u);
    EXPECT_GT(wal.bytes_written(), big.size() * sizeof(double));
    // The payload must actually reach the supplied path (the dtor unlinks it).
    EXPECT_GE(std::filesystem::file_size(path), big.size() * sizeof(double));
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(WalTest, MkstempTempFileLifecycle) {
  // The default disk-spilling log creates its file via mkstemp; the object
  // owns it: present (and named predictably) while the log lives, unlinked
  // exactly once by the destructor.
  std::string path;
  {
    WriteAheadLog wal(/*spill_to_disk=*/true);
    path = wal.path();
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.rfind("/tmp/joinboost_wal_", 0), 0u) << path;
    EXPECT_TRUE(std::filesystem::exists(path));
    wal.LogInts("f", "d", {}, {1, 2, 3});
    EXPECT_TRUE(std::filesystem::exists(path));
  }
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(WalTest, ConstructorFailureDoesNotLeakAFile) {
  test_util::TempDir tmp;
  std::string bad = tmp.File("no_such_dir") + "/wal.bin";
  EXPECT_THROW(WriteAheadLog(true, bad), JbError);
  EXPECT_FALSE(std::filesystem::exists(bad));
}

TEST(WalTest, FailedDiskWriteLeavesLogAndFileUnchanged) {
  // Failure injection: a write that dies mid-append must roll the file back
  // and leave the in-memory log untouched, so counters never report an
  // append that is not fully on disk — and the log stays usable after.
  test_util::TempDir tmp;
  std::string path = tmp.File("wal.bin");
  WriteAheadLog wal(/*spill_to_disk=*/true, path);
  wal.LogDoubles("f", "s", {}, {1.0, 2.0, 3.0});
  const uint64_t bytes_before = wal.bytes_written();
  const auto file_before = std::filesystem::file_size(path);

  util::fault::FailNext("wal-write");
  EXPECT_THROW(wal.LogDoubles("f", "s", {0, 1}, {4.0, 5.0}), JbError);

  EXPECT_EQ(wal.num_records(), 1u);
  EXPECT_EQ(wal.bytes_written(), bytes_before);
  EXPECT_EQ(std::filesystem::file_size(path), file_before);

  wal.LogDoubles("f", "s", {0, 1}, {4.0, 5.0});
  EXPECT_EQ(wal.num_records(), 2u);
  EXPECT_EQ(wal.VerifyAll(), 2u);
  EXPECT_GT(std::filesystem::file_size(path), file_before);
}

TEST(WalTest, ReplayFileRoundTripsRecordsFromDisk) {
  test_util::TempDir tmp;
  std::string path = tmp.File("wal.bin");
  WriteAheadLog wal(/*spill_to_disk=*/true, path);  // dtor unlinks the file
  wal.LogDoubles("f", "s", {0, 2}, {1.5, 2.5});
  wal.LogInts("f", "d", {}, {7, 8, 9});

  std::vector<WriteAheadLog::Record> replayed =
      WriteAheadLog::ReplayFile(path);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].table, "f");
  EXPECT_EQ(replayed[0].column, "s");
  EXPECT_EQ(replayed[0].rows, (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(replayed[0].type, TypeId::kFloat64);
  const double* vals =
      reinterpret_cast<const double*>(replayed[0].payload.data());
  EXPECT_EQ(vals[0], 1.5);
  EXPECT_EQ(vals[1], 2.5);
  EXPECT_EQ(replayed[1].column, "d");
  EXPECT_EQ(replayed[1].type, TypeId::kInt64);
  EXPECT_TRUE(replayed[1].rows.empty());
}

TEST(WalTest, ReplayDetectsFlippedPayloadByte) {
  test_util::TempDir tmp;
  std::string path = tmp.File("wal.bin");
  WriteAheadLog wal(/*spill_to_disk=*/true, path);
  wal.LogDoubles("f", "s", {}, {1.0, 2.0, 3.0});
  wal.LogInts("f", "d", {}, {5, 6});

  // Flip one byte of the last record's payload (the final byte of the file)
  // — a classic silent disk corruption. Replay must refuse the record with
  // the typed reason instead of restoring garbage.
  {
    std::fstream fs(path, std::ios::in | std::ios::out | std::ios::binary);
    fs.seekg(0, std::ios::end);
    const auto size = fs.tellg();
    fs.seekg(size - std::streamoff(1));
    char b;
    fs.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    fs.seekp(size - std::streamoff(1));
    fs.write(&b, 1);
  }
  try {
    WriteAheadLog::ReplayFile(path);
    FAIL() << "expected WalCorruption";
  } catch (const WalCorruption& e) {
    EXPECT_EQ(e.kind(), WalCorruption::Kind::kChecksumMismatch);
    EXPECT_NE(std::string(e.what()).find("f.d"), std::string::npos)
        << e.what();
  }
}

TEST(WalTest, ReplayDetectsTornTail) {
  test_util::TempDir tmp;
  std::string path = tmp.File("wal.bin");
  WriteAheadLog wal(/*spill_to_disk=*/true, path);
  wal.LogDoubles("f", "s", {}, {1.0, 2.0, 3.0});
  wal.LogDoubles("f", "t", {}, {4.0, 5.0});
  const auto full = std::filesystem::file_size(path);

  // A crash mid-append tears the tail record. Both torn shapes — inside the
  // second frame's body, and inside a header (10 bytes is less than the
  // 32-byte frame header) — must surface as kTornTail, not as a parse error
  // or a bogus record.
  for (std::uintmax_t cut : {full - 3, std::uintmax_t{10}}) {
    std::filesystem::resize_file(path, cut);
    try {
      WriteAheadLog::ReplayFile(path);
      FAIL() << "expected WalCorruption at size " << cut;
    } catch (const WalCorruption& e) {
      EXPECT_EQ(e.kind(), WalCorruption::Kind::kTornTail) << e.what();
    }
  }

  // Truncating at a frame boundary is not corruption: the first record
  // survives, the torn second one is simply gone.
  // (Re-log to rebuild, then cut exactly after record one.)
  std::filesystem::resize_file(path, 0);
  {
    WriteAheadLog rebuilt(/*spill_to_disk=*/true, tmp.File("wal2.bin"));
    rebuilt.LogDoubles("f", "s", {}, {1.0, 2.0, 3.0});
    const auto one = std::filesystem::file_size(rebuilt.path());
    rebuilt.LogDoubles("f", "t", {}, {4.0, 5.0});
    std::filesystem::resize_file(rebuilt.path(), one);
    std::vector<WriteAheadLog::Record> recs =
        WriteAheadLog::ReplayFile(rebuilt.path());
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].column, "s");
  }
}

TEST(WalTest, ReplayRestoresColumnAfterCrash) {
  // Failure injection: apply the WAL to a column that "lost" its update.
  WriteAheadLog wal(false);
  std::vector<double> committed = {10, 20, 30, 40};
  wal.LogDoubles("f", "s", {1, 3}, {21, 41});

  std::vector<double> crashed = {10, 20, 30, 40};  // pre-update image
  for (const auto& rec : wal.records()) {
    ASSERT_EQ(Fnv1a(rec.payload.data(), rec.payload.size()), rec.checksum);
    const double* vals = reinterpret_cast<const double*>(rec.payload.data());
    for (size_t i = 0; i < rec.rows.size(); ++i) {
      crashed[rec.rows[i]] = vals[i];
    }
  }
  EXPECT_EQ(crashed, (std::vector<double>{10, 21, 30, 41}));
}

TEST(MvccTest, UndoRollback) {
  VersionStore store;
  uint64_t txn = store.BeginTxn();
  store.RecordDoubles(txn, "f", "s", {0, 1}, {1.0, 2.0});
  EXPECT_EQ(store.num_undo_records(), 1u);
  EXPECT_GT(store.bytes_versioned(), 0u);

  VersionStore::Undo undo;
  ASSERT_TRUE(store.PopLast(&undo));
  EXPECT_EQ(undo.old_doubles, (std::vector<double>{1.0, 2.0}));
  EXPECT_FALSE(store.PopLast(&undo));
}

}  // namespace
}  // namespace joinboost
