// Query lifecycle governance: cooperative cancellation, deadlines, byte
// budgets, abort consistency of the write paths, bounded serving admission,
// and thread-count determinism of the governance counters.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/params.h"
#include "core/train.h"
#include "diff_corpus.h"
#include "exec/engine.h"
#include "serve/serving.h"
#include "sql/parser.h"
#include "storage/table.h"
#include "test_util.h"
#include "util/error.h"
#include "util/fault_injection.h"
#include "util/query_guard.h"

namespace joinboost {
namespace {

using exec::Database;
using exec::ExecTable;
using exec::ReadContext;
using diff_corpus::BuildDiffTables;
using diff_corpus::DiffProfile;
using diff_corpus::GenQuery;
using diff_corpus::GenerateQuery;
using diff_corpus::RowStrings;

// ---------------------------------------------------------------------------
// QueryGuard unit semantics.
// ---------------------------------------------------------------------------

TEST(QueryGuardTest, CancelIsStickyAndTyped) {
  util::QueryGuard g;
  g.Check();  // fresh guard passes
  g.Cancel();
  EXPECT_TRUE(g.cancelled());
  try {
    g.Check();
    FAIL() << "expected QueryAborted";
  } catch (const QueryAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kCancelled);
  }
  // Sticky until explicitly reset.
  EXPECT_THROW(g.Check(), QueryAborted);
  g.ResetCancel();
  g.Check();
}

TEST(QueryGuardTest, ExpiredDeadlineTripsWithTypedReason) {
  util::QueryGuard g;
  g.SetDeadlineAfter(std::chrono::nanoseconds(0));
  try {
    g.Check();
    FAIL() << "expected QueryAborted";
  } catch (const QueryAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kDeadlineExceeded);
  }
  g.ClearDeadline();
  g.Check();
  // A generous deadline does not trip.
  g.SetDeadlineAfter(std::chrono::hours(1));
  g.Check();
}

TEST(QueryGuardTest, ByteBudgetAccumulatesAndTrips) {
  util::QueryGuard g;
  g.ChargeBytes(1 << 30);  // no budget set: tracked but never trips
  EXPECT_EQ(g.bytes_used(), uint64_t{1} << 30);
  g.ResetUsage();
  g.set_byte_budget(1000);
  g.ChargeBytes(600);
  try {
    g.ChargeBytes(600);  // 1200 > 1000
    FAIL() << "expected QueryAborted";
  } catch (const QueryAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kMemoryBudget);
  }
  EXPECT_EQ(g.bytes_used(), 1200u);
  g.ResetUsage();
  g.ChargeBytes(900);  // fresh request fits again
}

// ---------------------------------------------------------------------------
// Governed execution through the engine.
// ---------------------------------------------------------------------------

class GovernedQueryTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 6000;
  void SetUp() override {
    db_ = std::make_unique<Database>(DiffProfile(true, 4));
    BuildDiffTables(db_.get(), /*seed=*/97, kRows);
  }

  ExecTable Governed(const std::string& sql, util::QueryGuard* g) {
    ReadContext rctx;
    rctx.guard = g;
    sql::Statement stmt = sql::Parse(sql);
    return db_->Query(rctx, *stmt.select);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(GovernedQueryTest, PreCancelledGuardAbortsBeforeAnyOutput) {
  const char* q =
      "SELECT fact.k1 AS k, SUM(fact.y) AS s FROM fact JOIN d1 "
      "ON fact.k1 = d1.k1 GROUP BY fact.k1 ORDER BY k";
  util::QueryGuard g;
  g.Cancel();
  try {
    Governed(q, &g);
    FAIL() << "expected QueryAborted";
  } catch (const QueryAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kCancelled);
  }
  EXPECT_EQ(db_->PlanStatsTotals().queries_cancelled, 1u);
  // The same engine answers the same query once the guard is reset — no
  // poisoned plan-cache or stats entries.
  g.ResetCancel();
  ExecTable ok = Governed(q, &g);
  EXPECT_EQ(RowStrings(ok), RowStrings(*db_->Query(q)));
}

TEST_F(GovernedQueryTest, ExpiredDeadlineAbortsAndCounts) {
  util::QueryGuard g;
  g.SetDeadlineAfter(std::chrono::nanoseconds(0));
  try {
    Governed("SELECT fact.x0 AS a FROM fact ORDER BY a", &g);
    FAIL() << "expected QueryAborted";
  } catch (const QueryAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kDeadlineExceeded);
  }
  EXPECT_EQ(db_->PlanStatsTotals().deadline_aborts, 1u);
  g.ClearDeadline();
  EXPECT_GT(Governed("SELECT fact.x0 AS a FROM fact ORDER BY a", &g).rows, 0u);
}

TEST_F(GovernedQueryTest, TinyByteBudgetAbortsHashBuildAndCounts) {
  // The join build charges its canonical hash bytes against the budget; a
  // budget far below the build size must abort with the typed reason.
  const char* q =
      "SELECT COUNT(*) AS c FROM fact JOIN d1 ON fact.k1 = d1.k1";
  util::QueryGuard g;
  g.set_byte_budget(64);
  try {
    Governed(q, &g);
    FAIL() << "expected QueryAborted";
  } catch (const QueryAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kMemoryBudget);
  }
  EXPECT_GT(g.bytes_used(), 64u);
  EXPECT_EQ(db_->PlanStatsTotals().budget_aborts, 1u);
  // Lifting the budget (and resetting usage) makes the query pass and match
  // the ungoverned answer bit for bit.
  g.set_byte_budget(0);
  g.ResetUsage();
  EXPECT_EQ(RowStrings(Governed(q, &g)), RowStrings(*db_->Query(q)));
}

TEST_F(GovernedQueryTest, GovernedRunsMatchUngovernedBitForBit) {
  util::QueryGuard g;  // armed with nothing: pure observation
  for (size_t i = 0; i < 24; ++i) {
    GenQuery q = GenerateQuery(0x60BE41ULL + i);
    SCOPED_TRACE(q.sql);
    EXPECT_EQ(RowStrings(Governed(q.sql, &g)), RowStrings(*db_->Query(q.sql)));
  }
  EXPECT_GT(db_->PlanStatsTotals().guard_checks, 0u)
      << "governed queries never hit a guard check point";
}

TEST(GovernanceCounterTest, GuardChecksAreThreadCountDeterministic) {
  // The same governed query stream must produce identical governance
  // counters on a 1-thread and a 4-thread engine: checks are counted by the
  // dispatcher at morsel/range/block granularity, never per worker.
  auto run_stream = [](int threads) {
    Database db(DiffProfile(true, threads));
    BuildDiffTables(&db, /*seed=*/97, 6000);
    util::QueryGuard g;
    for (size_t i = 0; i < 24; ++i) {
      GenQuery q = GenerateQuery(0xC0FFEEULL + i);
      ReadContext rctx;
      rctx.guard = &g;
      sql::Statement stmt = sql::Parse(q.sql);
      db.Query(rctx, *stmt.select);
    }
    return db.PlanStatsTotals();
  };
  plan::PlanStats s1 = run_stream(1);
  plan::PlanStats s4 = run_stream(4);
  EXPECT_GT(s1.guard_checks, 0u);
  EXPECT_EQ(s1.guard_checks, s4.guard_checks)
      << "guard_checks depends on thread count";
  EXPECT_EQ(s1.queries_cancelled, 0u);
  EXPECT_EQ(s4.queries_cancelled, 0u);
}

TEST(GovernanceCounterTest, UngovernedQueriesNeverPayForChecks) {
  Database db(DiffProfile(true, 4));
  BuildDiffTables(&db, /*seed=*/97, 6000);
  for (size_t i = 0; i < 8; ++i) {
    db.Query(GenerateQuery(0xC0FFEEULL + i).sql);
  }
  EXPECT_EQ(db.PlanStatsTotals().guard_checks, 0u)
      << "ungoverned fast path executed guard checks";
}

TEST(GovernanceCounterTest, FormatStatsSurfacesGovernanceCounters) {
  plan::PlanStats s;
  s.guard_checks = 7;
  std::string text = plan::FormatStats(s);
  EXPECT_NE(text.find("guard_checks"), std::string::npos) << text;
  EXPECT_NE(text.find("queries_cancelled"), std::string::npos) << text;
  EXPECT_NE(text.find("deadline_aborts"), std::string::npos) << text;
  EXPECT_NE(text.find("budget_aborts"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Abort consistency of the write paths (the PR's bugfix): an exception
// mid-write must leave no half-registered table, no partial WAL entries and
// no stale MVCC records.
// ---------------------------------------------------------------------------

EngineProfile DiskWalProfile() {
  EngineProfile p = EngineProfile::DSwap();
  p.wal = true;
  p.wal_to_disk = true;
  return p;
}

TEST(WriteAbortConsistencyTest, FailedWalWriteRollsBackMultiColumnUpdate) {
  Database db(DiskWalProfile());
  db.LoadTable(TableBuilder("t")
                   .AddDoubles("a", {1, 2, 3, 4})
                   .AddDoubles("b", {10, 20, 30, 40})
                   .Build());
  auto before = RowStrings(*db.Query("SELECT a, b FROM t ORDER BY a"));
  const size_t wal_before = db.wal().num_records();
  const uint64_t bytes_before = db.wal().bytes_written();

  util::fault::FailNext("wal-write");
  EXPECT_THROW(db.Execute("UPDATE t SET a = a + 1, b = b * 2"), JbError);

  // Nothing published: table contents, WAL and version store untouched.
  EXPECT_EQ(RowStrings(*db.Query("SELECT a, b FROM t ORDER BY a")),
            before);
  EXPECT_EQ(db.wal().num_records(), wal_before);
  EXPECT_EQ(db.wal().bytes_written(), bytes_before);
  EXPECT_EQ(db.versions().num_undo_records(), 0u);

  // The engine is fully usable afterwards: the same update goes through and
  // both columns land atomically (2 staged records in one batch).
  EXPECT_EQ(db.Execute("UPDATE t SET a = a + 1, b = b * 2").affected, 4u);
  EXPECT_EQ(db.wal().num_records(), wal_before + 2);
  EXPECT_EQ(db.QueryScalarDouble("SELECT SUM(a) AS s FROM t"), 14.0);
  EXPECT_EQ(db.QueryScalarDouble("SELECT SUM(b) AS s FROM t"), 200.0);
}

TEST(WriteAbortConsistencyTest, BadExpressionOnSecondSetItemLeavesNoTrace) {
  Database db(DiskWalProfile());
  db.LoadTable(TableBuilder("t")
                   .AddDoubles("a", {1, 2, 3})
                   .AddDoubles("b", {5, 6, 7})
                   .Build());
  auto before = RowStrings(*db.Query("SELECT a, b FROM t ORDER BY a"));
  const size_t wal_before = db.wal().num_records();

  // First SET item evaluates fine; the second references a missing column.
  // Before the publish-order fix the first item's WAL record and MVCC undo
  // were already applied when the throw unwound.
  EXPECT_THROW(db.Execute("UPDATE t SET a = a + 1, b = nosuch * 2"),
               JbError);
  EXPECT_EQ(RowStrings(*db.Query("SELECT a, b FROM t ORDER BY a")),
            before);
  EXPECT_EQ(db.wal().num_records(), wal_before);
  EXPECT_EQ(db.versions().num_undo_records(), 0u);
}

TEST(WriteAbortConsistencyTest, FailedWalWriteRollsBackAppendRows) {
  Database db(DiskWalProfile());
  db.LoadTable(TableBuilder("t")
                   .AddInts("x", {1, 2, 3})
                   .AddDoubles("y", {0.5, 1.5, 2.5})
                   .Build());
  const size_t wal_before = db.wal().num_records();

  ExecTable batch;
  batch.rows = 2;
  batch.cols.push_back({"", "x", exec::VectorData::FromInts({7, 8})});
  batch.cols.push_back({"", "y", exec::VectorData::FromDoubles({7.5, 8.5})});

  util::fault::FailNext("wal-write");
  EXPECT_THROW(db.AppendRows("t", batch), JbError);
  EXPECT_EQ(db.catalog().Get("t")->num_rows(), 3u);
  EXPECT_EQ(db.wal().num_records(), wal_before);

  TablePtr after = db.AppendRows("t", batch);
  EXPECT_EQ(after->num_rows(), 5u);
  EXPECT_EQ(db.wal().num_records(), wal_before + 2);
  EXPECT_EQ(db.QueryScalarDouble("SELECT SUM(x) AS s FROM t"), 21.0);
}

TEST(WriteAbortConsistencyTest, FailedWalWriteLeavesCreateTableUnregistered) {
  Database db(DiskWalProfile());
  db.LoadTable(TableBuilder("t").AddDoubles("a", {1, 2, 3}).Build());
  const size_t wal_before = db.wal().num_records();

  util::fault::FailNext("wal-write");
  EXPECT_THROW(db.Execute("CREATE TABLE t2 AS SELECT a FROM t"), JbError);
  EXPECT_FALSE(db.catalog().Exists("t2"))
      << "aborted CREATE TABLE AS left a half-registered table";
  EXPECT_EQ(db.wal().num_records(), wal_before);

  db.Execute("CREATE TABLE t2 AS SELECT a FROM t");
  EXPECT_TRUE(db.catalog().Exists("t2"));
  EXPECT_EQ(db.QueryScalarDouble("SELECT COUNT(*) AS c FROM t2"), 3.0);
}

// ---------------------------------------------------------------------------
// Serving: per-request deadlines, sticky cancel, bounded admission.
// ---------------------------------------------------------------------------

TEST(ServingGovernanceTest, CancelledSessionRejectsQueriesStickily) {
  Database db(DiffProfile(true, 2));
  BuildDiffTables(&db, /*seed=*/97, 4000);
  serve::ServingContext ctx(&db, {"fact", "d1", "d2"});
  auto session = ctx.OpenSession();
  EXPECT_GT(session.Query("SELECT fact.x0 AS a FROM fact ORDER BY a")->rows,
            0u);

  // Cancel through a copy: both share the guard, as a client thread would.
  auto handle = session;
  handle.Cancel();
  try {
    session.Query("SELECT fact.x0 AS a FROM fact ORDER BY a");
    FAIL() << "expected QueryAborted";
  } catch (const QueryAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kCancelled);
  }
  // Sticky: still dead on the next request.
  EXPECT_THROW(session.Query("SELECT fact.k1 AS k FROM fact"), QueryAborted);
  // A fresh session is unaffected.
  auto session2 = ctx.OpenSession();
  EXPECT_GT(session2.Query("SELECT fact.x0 AS a FROM fact ORDER BY a")->rows,
            0u);
  EXPECT_EQ(db.PlanStatsTotals().queries_cancelled, 2u);
}

TEST(ServingGovernanceTest, PerRequestDeadlineAndBudgetReset) {
  Database db(DiffProfile(true, 2));
  BuildDiffTables(&db, /*seed=*/97, 4000);
  serve::ServingContext ctx(&db, {"fact", "d1", "d2"});
  auto session = ctx.OpenSession();

  // Plant a genuinely expired deadline stamp directly on the guard...
  session.guard().set_deadline(util::QueryGuard::Clock::now() -
                               std::chrono::milliseconds(1));
  EXPECT_THROW(session.guard().Check(), QueryAborted);
  // ...and watch each request re-derive its deadline at entry instead of
  // inheriting the stale stamp: with no per-request deadline the stamp is
  // cleared, with a generous one it is replaced.
  EXPECT_GT(session.Query("SELECT fact.x0 AS a FROM fact ORDER BY a")->rows,
            0u);
  session.SetDeadlineMs(60000);
  session.guard().set_deadline(util::QueryGuard::Clock::now() -
                               std::chrono::milliseconds(1));
  EXPECT_GT(session.Query("SELECT fact.x0 AS a FROM fact ORDER BY a")->rows,
            0u);

  // Budget applies per request and usage resets between requests.
  session.SetDeadlineMs(0);
  session.SetByteBudget(64);
  EXPECT_THROW(
      session.Query("SELECT COUNT(*) AS c FROM fact JOIN d1 "
                    "ON fact.k1 = d1.k1"),
      QueryAborted);
  session.SetByteBudget(0);
  EXPECT_GT(session
                .Query("SELECT COUNT(*) AS c FROM fact JOIN d1 "
                       "ON fact.k1 = d1.k1")
                ->rows,
            0u);
}

TEST(ServingGovernanceTest, BoundedAdmissionWaitRejectsTypedAndCounts) {
  EngineProfile p = DiffProfile(true, 2);
  p.serve_admission_slots = 1;
  p.serve_admission_max_wait_ms = 25;
  Database db(p);
  BuildDiffTables(&db, /*seed=*/97, 2000);
  serve::ServingContext ctx(&db, {"fact", "d1", "d2"});
  auto session = ctx.OpenSession();

  // Deterministically exhaust the single slot, then watch a request bounce.
  ctx.gate().Acquire();
  EXPECT_THROW(session.Query("SELECT fact.x0 AS a FROM fact"),
               AdmissionRejected);
  EXPECT_EQ(ctx.admission_rejected(), 1u);
  ctx.gate().Release();
  EXPECT_GT(session.Query("SELECT fact.x0 AS a FROM fact ORDER BY a")->rows,
            0u);
  EXPECT_EQ(ctx.admission_rejected(), 1u);
}

TEST(ServingGovernanceTest, FailedSnapshotPublishLeavesCurrentIntact) {
  Database db(DiffProfile(true, 2));
  BuildDiffTables(&db, /*seed=*/97, 2000);
  serve::ServingContext ctx(&db, {"fact", "d1", "d2"});
  serve::SnapshotPtr before = ctx.current();

  util::fault::FailNext("snapshot-publish");
  EXPECT_THROW(ctx.Republish(), InjectedFault);
  // Sessions keep reading the previous snapshot; version did not move.
  EXPECT_EQ(ctx.current()->version, before->version);
  auto session = ctx.OpenSession();
  EXPECT_GT(session.Query("SELECT fact.x0 AS a FROM fact ORDER BY a")->rows,
            0u);
  // The next publish succeeds normally.
  serve::SnapshotPtr after = ctx.Republish();
  EXPECT_GT(after->version, before->version);
}

// ---------------------------------------------------------------------------
// Trainer: guard checked at boosting-round boundaries.
// ---------------------------------------------------------------------------

TEST(TrainerGovernanceTest, CancelledGuardStopsTrainingWithTypedAbort) {
  Database db(DiffProfile(true, 2));
  test_util::BuildSmallSnowflake(&db, /*seed=*/123, /*rows=*/2000);
  Dataset ds = test_util::MakeSnowflakeDataset(&db);
  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 3;
  params.num_leaves = 4;
  util::QueryGuard g;
  g.Cancel();
  params.guard = &g;
  try {
    Train(params, ds);
    FAIL() << "expected QueryAborted";
  } catch (const QueryAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kCancelled);
  }
}

}  // namespace
}  // namespace joinboost
