#include <gtest/gtest.h>

#include <set>

#include "baselines/dense_dataset.h"
#include "baselines/histogram_gbdt.h"
#include "data/generators.h"
#include "joinboost.h"
#include "test_util.h"

namespace joinboost {
namespace {

using test_util::TinyFavorita;

TEST(FavoritaIntegrationTest, GbdtMatchesHistogramBaselineRmse) {
  exec::Database db(EngineProfile::DSwap());
  Dataset ds = data::MakeFavorita(&db, TinyFavorita());

  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 10;
  params.num_leaves = 8;
  params.learning_rate = 0.2;

  TrainResult jb = Train(params, ds);

  baselines::ExportStats export_stats;
  baselines::DenseDataset dense =
      baselines::MaterializeExportLoad(ds, &export_stats);
  // Exact-mode baseline: bins cover all distinct values.
  core::TrainParams lgbm = params;
  lgbm.max_bin = 1 << 20;
  baselines::HistogramGbdt trainer(lgbm);
  core::Ensemble baseline = trainer.Train(dense);

  core::JoinedEval eval = core::MaterializeJoin(ds);
  double rmse_jb = eval.Rmse(jb.model);
  double rmse_lgbm = eval.Rmse(baseline);

  // Same greedy algorithm, same gain formula, same data => same quality
  // (paper Fig 8c: "the final rmse is nearly identical").
  EXPECT_NEAR(rmse_jb, rmse_lgbm, 1e-6 * std::max(1.0, rmse_lgbm));
  // And both must actually learn something.
  double rmse_base = eval.RmseCurve(jb.model)[0];
  EXPECT_LT(rmse_jb, 0.9 * rmse_base);
}

TEST(FavoritaIntegrationTest, RandomForestLearnsAndParallelMatches) {
  exec::Database db(EngineProfile::DSwap());
  Dataset ds = data::MakeFavorita(&db, TinyFavorita());

  core::TrainParams params;
  params.boosting = "rf";
  params.num_iterations = 8;
  params.num_leaves = 8;
  params.bagging_fraction = 0.5;
  params.feature_fraction = 0.8;

  TrainResult serial = Train(params, ds);

  Dataset ds2 = data::MakeFavorita(
      &db, [] {
        auto c = TinyFavorita();
        return c;
      }());
  // Same DB already holds the tables; reuse the dataset definition instead.
  params.inter_query_parallelism = true;
  TrainResult parallel = Train(params, ds);

  core::JoinedEval eval = core::MaterializeJoin(ds);
  double rmse_serial = eval.Rmse(serial.model);
  double rmse_parallel = eval.Rmse(parallel.model);
  // Deterministic hashing-based sampling: identical forests either way.
  EXPECT_NEAR(rmse_serial, rmse_parallel, 1e-9);
  ASSERT_EQ(serial.model.trees.size(), parallel.model.trees.size());
  for (size_t t = 0; t < serial.model.trees.size(); ++t) {
    EXPECT_EQ(serial.model.trees[t].nodes.size(),
              parallel.model.trees[t].nodes.size());
  }
  (void)ds2;
}

TEST(FavoritaIntegrationTest, CompositeKeyTransactionsSelectorWorks) {
  // Splitting on f_trans exercises the composite (store_id, date_id)
  // selector path in residual updates.
  exec::Database db(EngineProfile::DSwap());
  auto config = TinyFavorita();
  config.extra_features_per_dim = 0;
  Dataset ds = data::MakeFavorita(&db, config);

  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 6;
  params.num_leaves = 4;
  params.learning_rate = 0.3;
  TrainResult res = Train(params, ds);

  bool split_on_trans = false;
  for (const auto& tree : res.model.trees) {
    for (const auto& n : tree.nodes) {
      if (!n.is_leaf && n.feature == "f_trans") split_on_trans = true;
    }
  }
  EXPECT_TRUE(split_on_trans) << "f_trans (squared term) should be chosen";

  core::JoinedEval eval = core::MaterializeJoin(ds);
  auto curve = eval.RmseCurve(res.model);
  EXPECT_LT(curve.back(), curve.front());
}

TEST(FavoritaIntegrationTest, Figure9QueryMix) {
  // The paper counts 270 feature-split queries (15 nodes x 18 features) and
  // 75 message queries for one 8-leaf tree on Favorita. Our schema has 12
  // features: expect 15 x 12 split queries on the first tree with the
  // per-feature path, and 15 x (#relations carrying features) with batched
  // split evaluation (PR 4).
  exec::Database db(EngineProfile::DSwap());
  Dataset ds = data::MakeFavorita(&db, TinyFavorita());

  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 1;
  params.num_leaves = 8;
  params.batch_split_evaluation = false;
  TrainResult res = Train(params, ds);

  size_t features = ds.graph().AllFeatures().size();
  EXPECT_EQ(res.feature_queries, 15 * features);
  EXPECT_GT(res.message_queries, 0u);
  EXPECT_GT(res.cache_hits, 0u);

  std::set<int> feature_rels;
  for (const auto& f : ds.graph().AllFeatures()) {
    feature_rels.insert(ds.graph().RelationOfFeature(f));
  }
  exec::Database bdb(EngineProfile::DSwap());
  Dataset bds = data::MakeFavorita(&bdb, TinyFavorita());
  params.batch_split_evaluation = true;
  TrainResult bres = Train(params, bds);
  EXPECT_EQ(bres.feature_queries, 15 * feature_rels.size());
  EXPECT_LT(bres.feature_queries, res.feature_queries);
}

}  // namespace
}  // namespace joinboost
