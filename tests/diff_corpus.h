// Shared corpus for differential and chaos testing: deterministic star-schema
// tables (fact ⋈ d1 ⋈ d2), a seeded random query generator covering the
// engine's supported SELECT surface, and row stringification for bit-exact
// result comparison. Extracted from parallel_differential_test.cc so the
// chaos harness (chaos_test.cc) fuzzes the same query space the differential
// suite pins.
//
// Everything here is deterministic in its seed arguments: same seed, same
// tables, same query text — that is what lets a chaos run compare its
// post-fault rerun against a never-faulted baseline bit for bit.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "exec/engine.h"
#include "storage/engine_profile.h"
#include "storage/table.h"
#include "util/rng.h"

namespace joinboost {
namespace diff_corpus {

inline std::string CellText(const Value& v) {
  if (v.null) return "NULL";
  char buf[64];
  switch (v.type) {
    case TypeId::kFloat64:
      std::snprintf(buf, sizeof(buf), "%.17g", v.d);
      return buf;
    case TypeId::kString:
      return v.s;
    case TypeId::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v.i));
      return buf;
  }
  return "?";
}

inline std::vector<std::string> RowStrings(const exec::ExecTable& t) {
  std::vector<std::string> rows;
  rows.reserve(t.rows);
  for (size_t r = 0; r < t.rows; ++r) {
    std::string row;
    for (size_t c = 0; c < t.cols.size(); ++c) {
      if (c) row += "|";
      row += CellText(t.GetValue(r, c));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// fact(k1, k2, cat, x0, y) with k1 over-ranging d1's key set (LEFT/ANTI
/// joins produce genuine null-extended rows) and d1 carrying duplicate keys
/// (multi-match probe order is part of the determinism contract). cat is a
/// low-cardinality string column so dictionary-translated predicates are in
/// the fuzzed surface. `load` registers through the storage profile, so
/// compressed profiles get genuinely encoded payloads (the encoded-vs-
/// decoded axis needs that; the original axes keep plain storage).
inline void BuildDiffTables(exec::Database* db, uint64_t seed, size_t rows,
                            bool load = false) {
  Rng rng(seed);
  const int64_t kK1Range = 30, kD1Keys = 17, kK2Range = 11;
  std::vector<int64_t> k1(rows), k2(rows);
  std::vector<std::string> cat(rows);
  std::vector<double> x0(rows), y(rows);
  for (size_t i = 0; i < rows; ++i) {
    k1[i] = rng.NextInt(0, kK1Range - 1);
    k2[i] = rng.NextInt(0, kK2Range - 1);
    cat[i] = "c" + std::to_string(rng.NextInt(0, 11));
    x0[i] = rng.NextDouble() * 10;
    y[i] = 3.0 * x0[i] + static_cast<double>(k1[i]) -
           2.0 * static_cast<double>(k2[i]) + rng.NextGaussian();
  }
  std::vector<int64_t> d1k;
  std::vector<double> f1;
  for (int64_t k = 0; k < kD1Keys; ++k) {
    d1k.push_back(k);
    f1.push_back(static_cast<double>(rng.NextInt(1, 1000)));
  }
  for (int64_t k : {int64_t{2}, int64_t{5}}) {  // duplicate build-side keys
    d1k.push_back(k);
    f1.push_back(static_cast<double>(rng.NextInt(1, 1000)));
  }
  std::vector<int64_t> d2k;
  std::vector<double> f2;
  for (int64_t k = 0; k < kK2Range; ++k) {
    d2k.push_back(k);
    f2.push_back(static_cast<double>(rng.NextInt(1, 1000)));
  }
  auto reg = [&](TablePtr t) {
    if (load) {
      db->LoadTable(std::move(t));
    } else {
      db->RegisterTable(std::move(t));
    }
  };
  reg(TableBuilder("fact")
          .AddInts("k1", k1)
          .AddInts("k2", k2)
          .AddStrings("cat", cat)
          .AddDoubles("x0", x0)
          .AddDoubles("y", y)
          .Build());
  reg(TableBuilder("d1").AddInts("k1", d1k).AddDoubles("f1", f1).Build());
  reg(TableBuilder("d2").AddInts("k2", d2k).AddDoubles("f2", f2).Build());
}

inline EngineProfile DiffProfile(bool use_planner, int threads) {
  EngineProfile p = EngineProfile::DSwap();
  p.use_planner = use_planner;
  p.exec_threads = threads;
  // Shrink the morsel knobs so test-sized inputs genuinely fan out: a 6k-row
  // scan becomes ~24 morsels instead of one.
  p.morsel_rows = 256;
  p.parallel_threshold_rows = 64;
  return p;
}

// ---------------------------------------------------------------------------
// Seeded random query generator.
// ---------------------------------------------------------------------------

struct GenQuery {
  std::string sql;
  bool ordered = false;  ///< ORDER BY pins a total output order
};

/// One random query over fact ⋈ d1 ⋈ d2. The generator only emits shapes
/// the engine supports (equi joins, single-level aggregates, ORDER BY over
/// output columns) and pairs LIMIT with a total order so content is
/// well-defined under join reordering.
inline GenQuery GenerateQuery(uint64_t seed) {
  Rng rng(seed);
  GenQuery q;

  // Join shape. 0 = fact only, 1 = +d1, 2 = +d2, 3 = both.
  int joins = static_cast<int>(rng.NextInt(0, 3));
  bool has_d1 = joins == 1 || joins == 3;
  bool has_d2 = joins == 2 || joins == 3;
  // d1 join flavor: 0-5 inner, 6-7 left, 8 semi, 9 anti.
  int d1_flavor = has_d1 ? static_cast<int>(rng.NextInt(0, 9)) : -1;
  bool d1_left = d1_flavor == 6 || d1_flavor == 7;
  bool d1_semi_anti = d1_flavor >= 8;
  bool d1_cols = has_d1 && !d1_semi_anti;

  std::string from = "FROM fact";
  if (has_d1) {
    const char* kind = d1_semi_anti
                           ? (d1_flavor == 8 ? "SEMI JOIN" : "ANTI JOIN")
                           : (d1_left ? "LEFT JOIN" : "JOIN");
    from += std::string(" ") + kind + " d1 ON fact.k1 = d1.k1";
  }
  if (has_d2) from += " JOIN d2 ON fact.k2 = d2.k2";

  // Value expressions available under this join shape.
  std::vector<std::string> exprs = {
      "fact.x0", "fact.y", "fact.k1", "fact.k2", "(fact.x0 + fact.y)",
      "(fact.x0 * 2 + 1)", "(fact.y - fact.x0)"};
  if (d1_cols) {
    exprs.push_back("d1.f1");
    exprs.push_back("(fact.y * d1.f1)");
    exprs.push_back("(d1.f1 / 100)");
  }
  if (has_d2) {
    exprs.push_back("d2.f2");
    exprs.push_back("(fact.x0 + d2.f2)");
  }
  auto pick_expr = [&]() { return exprs[rng.NextBounded(exprs.size())]; };

  // WHERE: 0-2 conjuncts.
  std::vector<std::string> preds = {
      "fact.x0 > " + std::to_string(rng.NextInt(0, 8)),
      "fact.y < " + std::to_string(rng.NextInt(10, 40)),
      "fact.k1 <> " + std::to_string(rng.NextInt(0, 16)),
      "fact.x0 BETWEEN 2 AND " + std::to_string(rng.NextInt(4, 9)),
      "fact.k2 IN (1, 3, 5, " + std::to_string(rng.NextInt(6, 9)) + ")",
      "NOT fact.k1 = " + std::to_string(rng.NextInt(0, 29)),
      // Dictionary-translated string predicates (equality-class only: code
      // comparison and string comparison agree there, so row-mode engines
      // stay comparable). 'c12'/'c13' miss the dictionary on purpose.
      "fact.cat = 'c" + std::to_string(rng.NextInt(0, 13)) + "'",
      "fact.cat <> 'c" + std::to_string(rng.NextInt(0, 11)) + "'",
      "fact.cat IN ('c1', 'c5', 'nope', 'c" +
          std::to_string(rng.NextInt(0, 13)) + "')",
      "fact.cat NOT IN ('c2', 'c" + std::to_string(rng.NextInt(0, 13)) + "')",
  };
  if (d1_cols && !d1_left) {
    preds.push_back("d1.f1 >= " + std::to_string(rng.NextInt(1, 900)));
  }
  if (d1_cols && d1_left) {
    // Null-side predicates must stay above the join (PR 2 regression, now
    // under the parallel probe as well).
    preds.push_back(rng.NextInt(0, 1) == 0 ? "d1.f1 IS NULL"
                                           : "d1.f1 IS NOT NULL");
  }
  if (rng.NextInt(0, 9) == 0) {
    preds.push_back("fact.k1 IN (SELECT d1.k1 FROM d1 WHERE d1.f1 > " +
                    std::to_string(rng.NextInt(100, 800)) + ")");
  }
  int num_preds = static_cast<int>(rng.NextInt(0, 2));
  std::string where;
  for (int i = 0; i < num_preds; ++i) {
    where += (i == 0 ? " WHERE " : " AND ");
    where += preds[rng.NextBounded(preds.size())];
  }

  bool aggregate = rng.NextInt(0, 1) == 0;
  if (aggregate) {
    std::vector<std::string> keys;
    int key_shape = static_cast<int>(rng.NextInt(0, 9));
    if (key_shape < 4) {
      keys = {"fact.k1"};
    } else if (key_shape < 7) {
      keys = {"fact.k2"};
    } else if (key_shape < 9) {
      keys = {"fact.k1", "fact.k2"};
    }  // else: global aggregate, no keys
    std::vector<std::string> items;
    std::string group_sql, order_sql;
    for (size_t i = 0; i < keys.size(); ++i) {
      items.push_back(keys[i] + " AS g" + std::to_string(i));
      group_sql += (i == 0 ? " GROUP BY " : ", ") + keys[i];
      order_sql += (i == 0 ? " ORDER BY " : ", ") + ("g" + std::to_string(i));
    }
    int num_aggs = static_cast<int>(rng.NextInt(1, 3));
    const char* funcs[] = {"SUM", "COUNT", "AVG", "MIN", "MAX"};
    for (int a = 0; a < num_aggs; ++a) {
      const char* f = funcs[rng.NextBounded(5)];
      std::string arg =
          (std::string(f) == "COUNT" && rng.NextInt(0, 1) == 0) ? "*"
                                                                : pick_expr();
      items.push_back(std::string(f) + "(" + arg + ") AS a" +
                      std::to_string(a));
    }
    std::string having;
    if (!keys.empty() && rng.NextInt(0, 4) == 0) {
      having = " HAVING COUNT(*) > " + std::to_string(rng.NextInt(1, 5));
    }
    std::string limit;
    if (!keys.empty() && rng.NextInt(0, 4) == 0) {
      limit = " LIMIT " + std::to_string(rng.NextInt(1, 8));
    }
    std::string select = "SELECT ";
    for (size_t i = 0; i < items.size(); ++i) {
      if (i) select += ", ";
      select += items[i];
    }
    // Group keys are unique per output row, so ordering by all of them pins
    // a total order (required for LIMIT to be content-deterministic).
    q.sql =
        select + " " + from + where + group_sql + having + order_sql + limit;
    q.ordered = true;  // keyed: total order; global: single row
  } else {
    int num_items = static_cast<int>(rng.NextInt(1, 3));
    std::string select = "SELECT ";
    bool distinct = rng.NextInt(0, 6) == 0;
    if (distinct) select += "DISTINCT ";
    std::string order_sql;
    for (int i = 0; i < num_items; ++i) {
      std::string alias = "c" + std::to_string(i);
      if (i) select += ", ";
      select += pick_expr() + " AS " + alias;
      order_sql += (i == 0 ? " ORDER BY " : ", ") + alias;
      if (rng.NextInt(0, 2) == 0) order_sql += " DESC";
    }
    bool ordered = rng.NextInt(0, 9) < 7;
    std::string tail;
    if (ordered) {
      // Ordering by every output column makes the sorted sequence unique
      // even under join reordering (ties are whole-row duplicates).
      tail = order_sql;
      if (rng.NextInt(0, 2) == 0) {
        tail += " LIMIT " + std::to_string(rng.NextInt(1, 200));
      }
    }
    q.sql = select + " " + from + where + tail;
    q.ordered = ordered;
  }
  return q;
}

}  // namespace diff_corpus
}  // namespace joinboost
