// Lockdown for compressed execution (§5.3.2 "Compression"): predicates,
// hash keys and late materialization run directly on encoded columns, and
// every result must stay bit-identical to the decode-everything path. The
// unit layer here pins the unpack kernel on adversarial bit widths, the
// zone-map skipping outcomes (counted via PlanStats), the cross-dictionary
// join remap, and the per-(predicate, dictionary) IN-list translation cache.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "exec/engine.h"
#include "exec/expr_eval.h"
#include "plan/logical_plan.h"
#include "storage/compression.h"
#include "storage/table.h"
#include "test_util.h"

namespace joinboost {
namespace {

using exec::Database;
using exec::ExecTable;

std::string CellText(const Value& v) {
  if (v.null) return "NULL";
  char buf[64];
  switch (v.type) {
    case TypeId::kFloat64:
      std::snprintf(buf, sizeof(buf), "%.17g", v.d);
      return buf;
    case TypeId::kString:
      return v.s;
    case TypeId::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v.i));
      return buf;
  }
  return "?";
}

std::vector<std::string> RowStrings(const ExecTable& t) {
  std::vector<std::string> rows;
  rows.reserve(t.rows);
  for (size_t r = 0; r < t.rows; ++r) {
    std::string row;
    for (size_t c = 0; c < t.cols.size(); ++c) {
      if (c) row += "|";
      row += CellText(t.GetValue(r, c));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

EngineProfile CompressedProfile(bool cexec, int threads = 1) {
  EngineProfile p = EngineProfile::DSwap();
  p.compressed_exec = cexec;
  p.exec_threads = threads;
  p.morsel_rows = 256;
  p.parallel_threshold_rows = 64;
  return p;
}

// ---------------------------------------------------------------------------
// Unpack kernel: EncodeInts -> UnpackBlock must equal DecodeInts for every
// bit width the frame-of-reference scheme can emit.
// ---------------------------------------------------------------------------

void CheckRoundTrip(const std::vector<int64_t>& values) {
  compression::EncodedInts enc = compression::EncodeInts(values);
  ASSERT_EQ(enc.size, values.size());
  // Whole-column decode.
  EXPECT_EQ(compression::DecodeInts(enc), values);
  // Block-at-a-time kernel over every block.
  std::vector<int64_t> out(values.size());
  size_t pos = 0;
  for (const auto& blk : enc.blocks) {
    compression::UnpackBlock(blk, out.data() + pos);
    pos += blk.count;
  }
  ASSERT_EQ(pos, values.size());
  EXPECT_EQ(out, values);
  // Point lookups.
  for (size_t i = 0; i < values.size();
       i += std::max<size_t>(1, values.size() / 97)) {
    EXPECT_EQ(compression::UnpackOne(enc.blocks[i / compression::kBlockSize],
                                     i % compression::kBlockSize),
              values[i])
        << "index " << i;
  }
}

TEST(CompressedKernelTest, ConstantBlocksUseZeroBitWidth) {
  std::vector<int64_t> v(compression::kBlockSize + 37, 42);
  compression::EncodedInts enc = compression::EncodeInts(v);
  ASSERT_EQ(enc.blocks.size(), 2u);
  for (const auto& blk : enc.blocks) {
    EXPECT_EQ(blk.bit_width, 0);  // constant block: no packed words at all
    EXPECT_TRUE(blk.words.empty());
    EXPECT_EQ(blk.reference, 42);
    EXPECT_EQ(blk.max, 42);
  }
  CheckRoundTrip(v);
}

TEST(CompressedKernelTest, RoundTripsAdversarialBitWidths) {
  // Width 1: alternating 0/1 across a partial tail block.
  std::vector<int64_t> bits(2 * compression::kBlockSize + 5);
  for (size_t i = 0; i < bits.size(); ++i) bits[i] = static_cast<int64_t>(i & 1);
  CheckRoundTrip(bits);

  // Width 64: full-range extremes (INT64_MIN doubles as the NULL sentinel).
  std::vector<int64_t> extremes = {INT64_MIN, INT64_MAX, 0, -1, 1,
                                   kNullInt64, INT64_MAX - 1, INT64_MIN + 1};
  CheckRoundTrip(extremes);

  // Mixed widths per block: constant, then dense small range, then extremes —
  // each 4096-row block picks its own reference and width.
  std::vector<int64_t> mixed;
  mixed.insert(mixed.end(), compression::kBlockSize, 7);
  for (size_t i = 0; i < compression::kBlockSize; ++i) {
    mixed.push_back(static_cast<int64_t>(i));
  }
  for (size_t i = 0; i < compression::kBlockSize; ++i) {
    mixed.push_back(i % 2 == 0 ? INT64_MIN : INT64_MAX - static_cast<int64_t>(i));
  }
  mixed.push_back(123);  // partial tail
  CheckRoundTrip(mixed);

  // Every width 1..63 via a two-value block {0, 2^w - 1}.
  for (int w = 1; w < 64; ++w) {
    std::vector<int64_t> v;
    for (size_t i = 0; i < 130; ++i) {
      v.push_back(i % 3 == 0
                      ? 0
                      : static_cast<int64_t>((uint64_t{1} << w) - 1));
    }
    CheckRoundTrip(v);
  }
}

// ---------------------------------------------------------------------------
// Scan-level skipping, counted through PlanStats.
// ---------------------------------------------------------------------------

// 4 blocks (last one partial): vals is sorted so zone maps are tight; noise
// is scattered with a NULL run confined to block 1; cat has 8 dictionary
// values; x is a double payload (residual-only path).
constexpr size_t kRows = 3 * compression::kBlockSize + 100;
constexpr size_t kBlocks = 4;

void BuildEncodedTable(Database* db) {
  std::vector<int64_t> vals(kRows), noise(kRows);
  std::vector<std::string> cat(kRows);
  std::vector<double> x(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    vals[i] = static_cast<int64_t>(i);
    noise[i] = static_cast<int64_t>((i * 2654435761ULL) % 100000);
    if (i >= compression::kBlockSize && i < compression::kBlockSize + 200) {
      noise[i] = kNullInt64;  // NULL run inside block 1 only
    }
    cat[i] = "cat" + std::to_string(i % 8);
    x[i] = static_cast<double>(i) * 0.5;
  }
  db->LoadTable(TableBuilder("t")
                    .AddInts("vals", vals)
                    .AddInts("noise", noise)
                    .AddStrings("cat", cat)
                    .AddDoubles("x", x)
                    .Build());
}

class CompressedScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    on_ = std::make_unique<Database>(CompressedProfile(true));
    off_ = std::make_unique<Database>(CompressedProfile(false));
    BuildEncodedTable(on_.get());
    BuildEncodedTable(off_.get());
  }

  /// Exact row-sequence equality between the compressed and decode-first
  /// engines — physical order included, that's the determinism contract.
  void CheckIdentical(const std::string& sql) {
    SCOPED_TRACE(sql);
    EXPECT_EQ(RowStrings(*on_->Query(sql)), RowStrings(*off_->Query(sql)));
  }

  plan::PlanStats RunAndStats(const std::string& sql) {
    on_->ClearPlanStats();
    on_->Query(sql);
    return on_->PlanStatsTotals();
  }

  std::unique_ptr<Database> on_, off_;
};

TEST_F(CompressedScanTest, AbsentEqualityLiteralSelectsNothingWithoutDecode) {
  const std::string sql = "SELECT cat, vals FROM t WHERE cat = 'zzz-absent'";
  EXPECT_EQ(on_->Query(sql)->rows, 0u);
  plan::PlanStats s = RunAndStats(sql);
  // The literal misses the dictionary, so the conjunct is a NULL broadcast:
  // every block of both scanned encoded columns skips without unpacking.
  EXPECT_EQ(s.cells_decompressed, 0u);
  EXPECT_EQ(s.cols_decompressed, 0u);
  EXPECT_EQ(s.blocks_skipped, 2 * kBlocks);
  EXPECT_EQ(s.cells_decompress_avoided, 2 * kRows);
  CheckIdentical(sql);
}

TEST_F(CompressedScanTest, AbsentInListSelectsNothingWithoutDecode) {
  const std::string sql =
      "SELECT cat, vals FROM t WHERE cat IN ('nope1', 'nope2')";
  EXPECT_EQ(on_->Query(sql)->rows, 0u);
  plan::PlanStats s = RunAndStats(sql);
  EXPECT_EQ(s.cells_decompressed, 0u);
  EXPECT_EQ(s.blocks_skipped, 2 * kBlocks);
  EXPECT_EQ(s.cells_decompress_avoided, 2 * kRows);
  CheckIdentical(sql);
}

TEST_F(CompressedScanTest, RangeStraddlingBlockBoundarySkipsTheRest) {
  // [4000, 4200] straddles the block 0 / block 1 boundary at 4096: exactly
  // those two blocks unpack, blocks 2 and 3 skip off the zone map.
  const std::string sql =
      "SELECT vals FROM t WHERE vals BETWEEN 4000 AND 4200";
  CheckIdentical(sql);
  plan::PlanStats s = RunAndStats(sql);
  EXPECT_EQ(s.blocks_skipped, kBlocks - 2);
  EXPECT_EQ(s.cells_decompressed, 2 * compression::kBlockSize);
  EXPECT_EQ(s.cells_decompress_avoided, kRows - 2 * compression::kBlockSize);
  EXPECT_EQ(on_->Query(sql)->rows, 201u);
}

TEST_F(CompressedScanTest, NoneMatchSkipsEveryBlock) {
  const std::string sql = "SELECT vals FROM t WHERE vals < 0";
  EXPECT_EQ(on_->Query(sql)->rows, 0u);
  plan::PlanStats s = RunAndStats(sql);
  EXPECT_EQ(s.cells_decompressed, 0u);
  EXPECT_EQ(s.blocks_skipped, kBlocks);
  EXPECT_EQ(s.cells_decompress_avoided, kRows);
  CheckIdentical(sql);
}

TEST_F(CompressedScanTest, AllMatchStillProducesEveryRow) {
  // Zone maps prove every block matches; Phase A unpacks nothing, and only
  // output materialization touches the payload.
  const std::string sql = "SELECT vals FROM t WHERE vals >= 0";
  EXPECT_EQ(on_->Query(sql)->rows, kRows);
  CheckIdentical(sql);
}

TEST_F(CompressedScanTest, NullSentinelBlocksInteractWithPredicatesExactly) {
  // The NULL run lives in block 1 only; IS NULL skips the other blocks, and
  // comparisons / NOT IN reproduce the decoded path's NULL handling bit for
  // bit (NOT IN keeps NULL rows — engine semantics, pinned differentially).
  CheckIdentical("SELECT noise FROM t WHERE noise IS NULL");
  CheckIdentical("SELECT noise FROM t WHERE noise IS NOT NULL");
  CheckIdentical("SELECT vals, noise FROM t WHERE noise > 50000");
  CheckIdentical("SELECT vals FROM t WHERE noise NOT IN (5, 7)");
  CheckIdentical("SELECT vals FROM t WHERE noise NOT IN (-5, -7)");
  CheckIdentical("SELECT vals FROM t WHERE noise = NULL");
  plan::PlanStats s = RunAndStats("SELECT vals FROM t WHERE noise IS NULL");
  EXPECT_GT(s.blocks_skipped, 0u);
}

TEST_F(CompressedScanTest, ResidualConjunctsLateMaterializeSurvivorsOnly) {
  // vals lowers to the zone maps; the double-column conjunct stays residual
  // and must only see (and decode) rows block 0 lets through.
  const std::string sql =
      "SELECT vals, x FROM t WHERE vals < 100 AND x * 2 >= 50";
  CheckIdentical(sql);
  plan::PlanStats s = RunAndStats(sql);
  EXPECT_GT(s.blocks_skipped, 0u);
  EXPECT_GT(s.cells_decompress_avoided, 0u);
}

TEST_F(CompressedScanTest, MixedPredicatesMatchDecodedEngineExactly) {
  CheckIdentical("SELECT cat, vals FROM t WHERE cat = 'cat3' AND vals > 9000");
  CheckIdentical(
      "SELECT cat, COUNT(*) AS c FROM t WHERE cat IN ('cat1', 'cat5', 'zz') "
      "GROUP BY cat ORDER BY cat");
  CheckIdentical("SELECT vals FROM t WHERE vals <> 4096 AND vals <= 4100");
  CheckIdentical(
      "SELECT SUM(x) AS s FROM t WHERE vals BETWEEN 4090 AND 8200");
  CheckIdentical("SELECT cat FROM t WHERE cat <> 'cat0' AND vals < 20");
}

TEST_F(CompressedScanTest, CountersAreThreadCountIndependent) {
  auto run_all = [](Database* db) {
    db->ClearPlanStats();
    db->Query("SELECT vals FROM t WHERE vals BETWEEN 4000 AND 4200");
    db->Query("SELECT cat, vals FROM t WHERE cat = 'zzz-absent'");
    db->Query("SELECT vals, noise FROM t WHERE noise > 50000");
    return db->PlanStatsTotals();
  };
  Database par(CompressedProfile(true, /*threads=*/4));
  BuildEncodedTable(&par);
  plan::PlanStats s1 = run_all(on_.get());
  plan::PlanStats sN = run_all(&par);
  EXPECT_GT(s1.cells_decompress_avoided, 0u);
  EXPECT_GT(s1.blocks_skipped, 0u);
  EXPECT_EQ(s1.cells_decompress_avoided, sN.cells_decompress_avoided);
  EXPECT_EQ(s1.blocks_skipped, sN.blocks_skipped);
  EXPECT_EQ(s1.cells_decompressed, sN.cells_decompressed);
  EXPECT_EQ(s1.cols_decompressed, sN.cols_decompressed);
}

TEST_F(CompressedScanTest, FormatStatsSurfacesTheNewCounters) {
  plan::PlanStats s =
      RunAndStats("SELECT vals FROM t WHERE vals BETWEEN 4000 AND 4200");
  std::string text = plan::FormatStats(s);
  EXPECT_NE(text.find("decompress_avoided"), std::string::npos) << text;
  EXPECT_NE(text.find("blocks_skipped"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Cross-dictionary join remap.
// ---------------------------------------------------------------------------

TEST(CrossDictJoinTest, RemapMatchesSharedDictionaryJoin) {
  // Left carries keys the right side has never seen ("stray") plus shared
  // keys in a different insertion order, so codes disagree between the two
  // dictionaries; the remapped join must behave exactly like a join where
  // both sides share one dictionary.
  std::vector<std::string> lkeys, rkeys;
  std::vector<int64_t> lv, rv;
  const char* shared[] = {"apple", "pear", "plum", "fig", "quince"};
  for (size_t i = 0; i < 400; ++i) {
    lkeys.push_back(i % 7 == 0 ? "stray" + std::to_string(i % 3)
                               : shared[i % 5]);
    lv.push_back(static_cast<int64_t>(i));
  }
  for (size_t i = 0; i < 5; ++i) {
    rkeys.push_back(shared[4 - i]);  // reversed order => different codes
    rv.push_back(static_cast<int64_t>(100 + i));
  }
  rkeys.push_back("right-only");
  rv.push_back(999);

  auto build = [&](Database* db, bool share_dict) {
    TablePtr right =
        TableBuilder("r").AddStrings("s", rkeys).AddInts("rv", rv).Build();
    DictionaryPtr dict = share_dict ? right->column("s")->dict() : nullptr;
    TablePtr left =
        TableBuilder("l").AddStrings("s", lkeys, dict).AddInts("lv", lv).Build();
    db->LoadTable(right);
    db->LoadTable(left);
  };

  Database cross(CompressedProfile(true));
  Database shared_db(CompressedProfile(true));
  build(&cross, /*share_dict=*/false);
  build(&shared_db, /*share_dict=*/true);

  const char* queries[] = {
      "SELECT l.lv AS a, r.rv AS b FROM l JOIN r ON l.s = r.s ORDER BY a",
      "SELECT l.lv AS a, r.rv AS b FROM l LEFT JOIN r ON l.s = r.s "
      "ORDER BY a",
      "SELECT COUNT(*) AS c FROM l SEMI JOIN r ON l.s = r.s",
      "SELECT COUNT(*) AS c FROM l ANTI JOIN r ON l.s = r.s",
      "SELECT r.rv AS g, COUNT(*) AS c FROM l JOIN r ON l.s = r.s "
      "GROUP BY r.rv ORDER BY g",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    EXPECT_EQ(RowStrings(*cross.Query(q)), RowStrings(*shared_db.Query(q)));
  }
  // Sanity against hand-counted expectations: strays never match.
  EXPECT_EQ(cross.QueryScalarDouble(
                "SELECT COUNT(*) AS c FROM l ANTI JOIN r ON l.s = r.s"),
            shared_db.QueryScalarDouble(
                "SELECT COUNT(*) AS c FROM l ANTI JOIN r ON l.s = r.s"));
}

// ---------------------------------------------------------------------------
// IN-list translation cache: one dictionary probe per (predicate, dictionary).
// ---------------------------------------------------------------------------

TEST(InListCacheTest, TranslatesOncePerPredicateAndDictionary) {
  // Row-mode re-enters expression evaluation once per input row — without
  // the (node, dictionary) cache this counted one translation per row.
  EngineProfile row = CompressedProfile(false);
  row.columnar_exec = false;
  Database db(row);
  std::vector<std::string> s;
  std::vector<int64_t> v;
  for (size_t i = 0; i < 64; ++i) {
    s.push_back("k" + std::to_string(i % 6));
    v.push_back(static_cast<int64_t>(i));
  }
  db.RegisterTable(TableBuilder("t").AddStrings("s", s).AddInts("v", v).Build());

  exec::ResetInListTranslations();
  auto out = db.Query("SELECT v FROM t WHERE s IN ('k1', 'k4', 'absent')");
  EXPECT_GT(out->rows, 0u);
  EXPECT_EQ(exec::InListTranslations(), 1u);

  // Serial vectorized evaluation (single morsel => single EvalContext).
  Database vec(CompressedProfile(true));
  vec.LoadTable(TableBuilder("t").AddStrings("s", s).AddInts("v", v).Build());
  exec::ResetInListTranslations();
  auto out2 = vec.Query("SELECT v FROM t WHERE s IN ('k1', 'k4', 'absent')");
  EXPECT_EQ(RowStrings(*out), RowStrings(*out2));
  EXPECT_EQ(exec::InListTranslations(), 1u);
}

}  // namespace
}  // namespace joinboost
