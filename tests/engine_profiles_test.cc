#include <gtest/gtest.h>

#include "data/generators.h"
#include "joinboost.h"

namespace joinboost {
namespace {

/// Every engine profile must execute identical SQL to identical results —
/// the profiles differ in *cost structure*, never in semantics.
class ProfileEquivalenceTest
    : public ::testing::TestWithParam<EngineProfile> {};

TEST_P(ProfileEquivalenceTest, SameQueryResultsAcrossProfiles) {
  exec::Database db(GetParam());
  db.LoadTable(TableBuilder("t")
                   .AddInts("k", {1, 2, 1, 3, 2, 1})
                   .AddDoubles("v", {1.5, 2.5, 3.5, 4.5, 5.5, 6.5})
                   .Build());
  db.LoadTable(TableBuilder("d")
                   .AddInts("k", {1, 2, 3})
                   .AddStrings("name", {"a", "b", "c"})
                   .Build());

  auto agg = db.Query(
      "SELECT d.name AS name, SUM(t.v) AS s, COUNT(*) AS c "
      "FROM t JOIN d ON t.k = d.k GROUP BY d.name ORDER BY name");
  ASSERT_EQ(agg->rows, 3u);
  EXPECT_DOUBLE_EQ(agg->GetValue(0, 1).d, 11.5);  // a: 1.5+3.5+6.5
  EXPECT_EQ(agg->GetValue(0, 2).i, 3);
  EXPECT_DOUBLE_EQ(agg->GetValue(1, 1).d, 8.0);   // b: 2.5+5.5
  EXPECT_DOUBLE_EQ(agg->GetValue(2, 1).d, 4.5);   // c

  db.Execute("CREATE TABLE t2 AS SELECT k, v * 2 AS v FROM t WHERE k <> 3");
  EXPECT_DOUBLE_EQ(db.QueryScalarDouble("SELECT SUM(v) AS s FROM t2"), 39.0);

  auto upd = db.Execute("UPDATE t2 SET v = v + 1 WHERE k = 1");
  EXPECT_EQ(upd.affected, 3u);
  EXPECT_DOUBLE_EQ(db.QueryScalarDouble("SELECT SUM(v) AS s FROM t2"), 42.0);
}

TEST_P(ProfileEquivalenceTest, TrainingIdenticalModelsAcrossProfiles) {
  exec::Database db(GetParam());
  data::FavoritaConfig config;
  config.sales_rows = 3000;
  config.num_items = 40;
  config.num_stores = 6;
  config.num_dates = 30;
  config.extra_features_per_dim = 0;
  Dataset ds = data::MakeFavorita(&db, config);

  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 3;
  params.num_leaves = 4;
  params.update_strategy = "auto";  // resolves per profile capability
  TrainResult res = Train(params, ds);

  core::JoinedEval eval = core::MaterializeJoin(ds);
  auto curve = eval.RmseCurve(res.model);
  EXPECT_LT(curve.back(), curve.front());
  // Store the rmse in a static map keyed by nothing: instead assert a fixed
  // deterministic value band shared by all profiles via the curve monotony
  // plus exact model agreement with the reference profile below.
  static double reference_rmse = -1;
  if (reference_rmse < 0) {
    reference_rmse = curve.back();
  } else {
    EXPECT_NEAR(curve.back(), reference_rmse, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Profiles, ProfileEquivalenceTest,
    ::testing::Values(EngineProfile::XCol(), EngineProfile::XRow(),
                      EngineProfile::DDisk(), EngineProfile::DMem(),
                      EngineProfile::DSwap()),
    [](const ::testing::TestParamInfo<EngineProfile>& info) {
      std::string name = info.param.name;
      for (auto& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(ProfileBehaviourTest, WalRecordsUpdates) {
  exec::Database db(EngineProfile::DDisk());
  db.LoadTable(
      TableBuilder("t").AddInts("k", {1, 2}).AddDoubles("v", {1, 2}).Build());
  size_t before = db.wal().num_records();
  db.Execute("UPDATE t SET v = v + 1");
  EXPECT_GT(db.wal().num_records(), before);
  EXPECT_EQ(db.wal().VerifyAll(), db.wal().num_records());
}

TEST(ProfileBehaviourTest, MvccVersionsUpdates) {
  exec::Database db(EngineProfile::DMem());
  db.LoadTable(
      TableBuilder("t").AddInts("k", {1, 2}).AddDoubles("v", {1, 2}).Build());
  db.Execute("UPDATE t SET v = v + 1 WHERE k = 1");
  EXPECT_EQ(db.versions().num_undo_records(), 1u);
  VersionStore::Undo undo;
  ASSERT_TRUE(db.versions().PopLast(&undo));
  EXPECT_EQ(undo.old_doubles, (std::vector<double>{1.0}));
}

TEST(ProfileBehaviourTest, CompressionAppliedAtRest) {
  exec::Database db(EngineProfile::DDisk());
  std::vector<int64_t> k(50000, 3);
  db.LoadTable(TableBuilder("t").AddInts("k", k).Build());
  auto t = db.catalog().Get("t");
  EXPECT_TRUE(t->column("k")->encoded());
  EXPECT_LT(t->ByteSize(), 50000 * 8 / 8);  // constant column packs tightly
}

TEST(ProfileBehaviourTest, SwapRequiresCapability) {
  exec::Database db(EngineProfile::DMem());  // no column swap
  db.LoadTable(TableBuilder("a").AddDoubles("v", {1}).Build());
  db.LoadTable(TableBuilder("b").AddDoubles("v", {2}).Build());
  EXPECT_THROW(db.SwapColumns("a", "v", "b", "v"), JbError);
}

}  // namespace
}  // namespace joinboost
