#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluate.h"
#include "core/params.h"
#include "core/train.h"
#include "exec/engine.h"
#include "plan/logical_plan.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "storage/table.h"
#include "test_util.h"

namespace joinboost {
namespace {

using exec::Database;
using exec::ExecTable;

// ---------------------------------------------------------------------------
// Differential harness: every query must return identical results with the
// planner on and off (EngineProfile::use_planner).
// ---------------------------------------------------------------------------

std::string CellText(const Value& v) {
  if (v.null) return "NULL";
  char buf[64];
  switch (v.type) {
    case TypeId::kFloat64:
      std::snprintf(buf, sizeof(buf), "%.17g", v.d);
      return buf;
    case TypeId::kString:
      return v.s;
    case TypeId::kInt64:
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v.i));
      return buf;
  }
  return "?";
}

std::vector<std::string> RowStrings(const ExecTable& t) {
  std::vector<std::string> rows;
  rows.reserve(t.rows);
  for (size_t r = 0; r < t.rows; ++r) {
    std::string row;
    for (size_t c = 0; c < t.cols.size(); ++c) {
      if (c) row += "|";
      row += CellText(t.GetValue(r, c));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Bit-identical comparison. Ordered queries compare row-by-row; unordered
/// ones compare the sorted row multisets (join reordering may legally change
/// the physical output order of unordered queries).
void ExpectSameResults(const ExecTable& planned, const ExecTable& unplanned,
                       bool ordered) {
  ASSERT_EQ(planned.rows, unplanned.rows);
  ASSERT_EQ(planned.cols.size(), unplanned.cols.size());
  for (size_t c = 0; c < planned.cols.size(); ++c) {
    EXPECT_EQ(planned.cols[c].name, unplanned.cols[c].name);
  }
  std::vector<std::string> a = RowStrings(planned);
  std::vector<std::string> b = RowStrings(unplanned);
  if (!ordered) {
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
  }
  EXPECT_EQ(a, b);
}

void LoadDifferentialTables(Database* db) {
  db->RegisterTable(TableBuilder("r")
                        .AddInts("a", {1, 1, 2, 2})
                        .AddInts("b", {2, 3, 1, 2})
                        .Build());
  db->RegisterTable(TableBuilder("s")
                        .AddInts("a", {1, 1, 2})
                        .AddInts("c", {2, 1, 3})
                        .Build());
  db->RegisterTable(TableBuilder("t")
                        .AddInts("a", {1, 1, 2})
                        .AddInts("d", {1, 2, 2})
                        .Build());
  db->RegisterTable(TableBuilder("small")
                        .AddInts("a", {1})
                        .AddInts("z", {42})
                        .Build());
  db->RegisterTable(TableBuilder("keys").AddInts("a", {2}).Build());
  db->RegisterTable(TableBuilder("names")
                        .AddInts("id", {1, 2, 3})
                        .AddStrings("name", {"ann", "bob", "ann"})
                        .Build());
  db->RegisterTable(TableBuilder("wide")
                        .AddInts("a", {1, 2, 3, 4})
                        .AddDoubles("v", {1.5, 2.5, 3.5, 4.5})
                        .AddDoubles("w", {0.1, 0.2, 0.3, 0.4})
                        .AddInts("u", {7, 8, 9, 10})
                        .Build());
  // bigx and smallx both expose a column named `x`: unqualified references
  // are ambiguous and bind first-match in the written join order.
  db->RegisterTable(TableBuilder("bigx")
                        .AddInts("k", {1, 1, 2, 2, 3})
                        .AddInts("x", {2, 2, 3, 3, 4})
                        .Build());
  db->RegisterTable(TableBuilder("smallx")
                        .AddInts("k2", {1, 2})
                        .AddInts("x", {9, 9})
                        .Build());
  // p and q have globally unique column names, so joins over them are
  // reorder-eligible unless something else (e.g. SELECT *) forbids it.
  db->RegisterTable(TableBuilder("p")
                        .AddInts("pk", {1, 1, 2, 2})
                        .AddInts("pv", {10, 11, 12, 13})
                        .Build());
  db->RegisterTable(
      TableBuilder("q").AddInts("qk", {2}).AddInts("qv", {77}).Build());
}

struct DiffQuery {
  const char* sql;
  bool ordered;  ///< result order is pinned by ORDER BY
};

class PlannerDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EngineProfile on = EngineProfile::DSwap();
    EngineProfile off = EngineProfile::DSwap();
    off.use_planner = false;
    planned_ = std::make_unique<Database>(on);
    unplanned_ = std::make_unique<Database>(off);
    LoadDifferentialTables(planned_.get());
    LoadDifferentialTables(unplanned_.get());
  }
  std::unique_ptr<Database> planned_;
  std::unique_ptr<Database> unplanned_;
};

TEST_F(PlannerDifferentialTest, EveryQueryShapeMatchesUnplannedExecution) {
  const DiffQuery queries[] = {
      // sql_engine_test.cc shapes
      {"SELECT a, b FROM r WHERE b >= 2", false},
      {"SELECT 1 + 2 AS x, 3.5 * 2 AS y", false},
      {"SELECT a, SUM(b) AS s, COUNT(*) AS c FROM r GROUP BY a ORDER BY a",
       true},
      {"SELECT SUM(b) AS s, COUNT(*) AS c, AVG(b) AS m FROM r", false},
      {"SELECT r.a AS a, COUNT(*) AS c FROM r JOIN s ON r.a = s.a "
       "GROUP BY r.a ORDER BY a",
       true},
      {"SELECT COUNT(*) AS c FROM r JOIN s ON r.a = s.a JOIN t ON r.a = t.a",
       false},
      {"SELECT COUNT(*) AS c FROM r WHERE a IN (SELECT a FROM s WHERE c > 2)",
       false},
      {"SELECT SUM(CASE WHEN b > 2 THEN 1 ELSE 0 END) AS big FROM r", false},
      {"SELECT a, SUM(b) OVER (ORDER BY a) AS cum FROM "
       "(SELECT a, SUM(b) AS b FROM r GROUP BY a) ORDER BY a",
       true},
      {"SELECT a, b FROM r ORDER BY b DESC LIMIT 2", true},
      {"SELECT DISTINCT a FROM r", false},
      {"SELECT COUNT(*) AS c FROM names WHERE name = 'ann'", false},
      {"SELECT COUNT(*) AS c FROM r SEMI JOIN keys ON r.a = keys.a", false},
      {"SELECT COUNT(*) AS c FROM r ANTI JOIN keys ON r.a = keys.a", false},
      // WHERE on semi/anti right sides must be pushed below the join (their
      // columns are gone from the join output).
      {"SELECT COUNT(*) AS c FROM r SEMI JOIN s ON r.a = s.a "
       "WHERE s.c >= 2",
       false},
      {"SELECT COUNT(*) AS c FROM r ANTI JOIN s ON r.a = s.a "
       "WHERE s.c >= 2",
       false},
      // Ambiguous unqualified `x` (bigx.x and smallx.x): join reordering
      // must stand down so first-match binding keeps the written order.
      {"SELECT x AS v FROM r JOIN bigx ON r.a = bigx.k "
       "JOIN smallx ON r.a = smallx.k2 ORDER BY v",
       true},
      // SELECT * pins the physical column order: reordering must stand down
      // (ExpectSameResults also compares column names positionally).
      {"SELECT * FROM r JOIN p ON r.a = p.pk JOIN q ON r.a = q.qk", false},
      // Constant-false conjunct inside ON must stay a residual filter, not
      // collapse the whole condition (the equi key would vanish).
      {"SELECT COUNT(*) AS c FROM r JOIN s ON r.a = s.a AND 1 = 2", false},
      {"SELECT COUNT(*) AS c FROM r JOIN s ON r.a = s.a AND 1 = 1", false},
      // outer-join semantics: WHERE on the nullable side must not be pushed
      {"SELECT r.a AS a, small.z AS z FROM r LEFT JOIN small "
       "ON r.a = small.a ORDER BY a",
       true},
      {"SELECT r.a AS a FROM r LEFT JOIN small ON r.a = small.a "
       "WHERE small.z IS NULL ORDER BY a",
       true},
      // opaque derived table (SELECT *) disables static pushdown/pruning
      {"SELECT COUNT(*) AS c FROM (SELECT * FROM r) AS sub "
       "JOIN s ON sub.a = s.a",
       false},
      // constant folding + short circuits
      {"SELECT a FROM r WHERE 1 = 0", false},
      {"SELECT a FROM r WHERE 1 = 1 AND a = 2 ORDER BY a", true},
      {"SELECT a FROM r WHERE 2 + 2 = 5 OR b > 2", false},
      // IN list, BETWEEN, residual join predicates, multi-way + filter
      {"SELECT a FROM r WHERE a IN (1, 3) ORDER BY a", true},
      {"SELECT a + 0 AS a2, b FROM r WHERE b BETWEEN 2 AND 3 ORDER BY a2, b",
       true},
      {"SELECT r.b AS b FROM r JOIN s ON r.a = s.a AND r.b < s.c", false},
      {"SELECT SUM(r.b * s.c) AS v FROM r JOIN s ON r.a = s.a "
       "JOIN t ON r.a = t.a WHERE t.d = 2",
       false},
      {"SELECT * FROM r ORDER BY a, b", true},
      // projection pruning source shapes
      {"SELECT SUM(v) AS sv FROM wide WHERE a > 1", false},
      {"SELECT wide.a AS a, SUM(wide.v) AS sv FROM wide "
       "JOIN r ON wide.a = r.a GROUP BY wide.a ORDER BY a",
       true},
  };
  for (const auto& q : queries) {
    SCOPED_TRACE(q.sql);
    auto a = planned_->Query(q.sql);
    auto b = unplanned_->Query(q.sql);
    ExpectSameResults(*a, *b, q.ordered);
  }
}

TEST_F(PlannerDifferentialTest, UpdateAfterPlannedSelectsStaysIdentical) {
  for (Database* db : {planned_.get(), unplanned_.get()}) {
    db->Execute("CREATE TABLE u AS SELECT a, b FROM r");
    db->Execute("UPDATE u SET b = b * 2 + 1 WHERE a = 1");
  }
  auto a = planned_->Query("SELECT a, b FROM u ORDER BY a, b");
  auto b = unplanned_->Query("SELECT a, b FROM u ORDER BY a, b");
  ExpectSameResults(*a, *b, /*ordered=*/true);
}

// ---------------------------------------------------------------------------
// EXPLAIN golden tests over message-passing query shapes.
// ---------------------------------------------------------------------------

class PlannerExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(EngineProfile::DSwap());
    db_->RegisterTable(TableBuilder("fact")
                           .AddInts("k1", {0, 0, 1, 1, 2, 2, 0, 1})
                           .AddInts("k2", {0, 1, 0, 1, 0, 1, 0, 1})
                           .AddDoubles("s", {1, 2, 3, 4, 5, 6, 7, 8})
                           .AddDoubles("x0", {.1, .6, .7, .2, .9, 1.8, .4, 2})
                           .Build());
    db_->RegisterTable(TableBuilder("m")
                           .AddInts("k1", {0, 1, 2})
                           .AddInts("c", {2, 3, 1})
                           .AddDoubles("s", {1.5, 2.5, 3.5})
                           .Build());
    db_->RegisterTable(TableBuilder("sel").AddInts("k1", {0, 2}).Build());
  }

  std::string ExplainText(const std::string& explain_sql) {
    auto t = db_->Query(explain_sql);
    std::string out;
    for (size_t r = 0; r < t->rows; ++r) {
      out += t->GetValue(r, 0).s;
      out += "\n";
    }
    return out;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(PlannerExplainTest, MessageQueryGolden) {
  // The §5.3 message shape: join the child message, filter on the node's
  // predicate, group by the edge key.
  std::string text = ExplainText(
      "EXPLAIN SELECT fact.k1, SUM(fact.s * m.c) AS s FROM fact "
      "JOIN m ON fact.k1 = m.k1 WHERE fact.x0 > 0.5 GROUP BY fact.k1");
  // The fact scan estimate is exact (rows~5: the histogram sees 5 of 8 rows
  // with x0 > 0.5), and the join estimate uses 1/max(ndv) on the key:
  // 5 * 3 / max(3, 3) = 5.
  EXPECT_EQ(text,
            "Project [k1, s] (rows~1, cols=2)\n"
            "  Aggregate keys=[fact.k1] aggs=1 (rows~1, cols=2)\n"
            "    Join INNER on (fact.k1 = m.k1) (rows~5, cols=5)\n"
            "      Scan fact [k1, s, x0] filter=(fact.x0 > 0.5) "
            "(rows~5/8, cols=3/4)\n"
            "      Scan m [k1, c] (rows~3/3, cols=2/3)\n"
            "-- rules: pushed=1\n");
}

TEST_F(PlannerExplainTest, SelectorQueryGolden) {
  // The §5.3.1 selector shape: DISTINCT keys under a semi-join.
  std::string text = ExplainText(
      "EXPLAIN SELECT DISTINCT fact.k1 FROM fact "
      "SEMI JOIN sel ON fact.k1 = sel.k1 WHERE fact.x0 > 0.5");
  // Histogram-exact fact estimate (5 of 8 rows pass x0 > 0.5); the semi join
  // filters by key coverage ndv(sel.k1)/ndv(fact.k1) = 2/3: 5 * 2/3 rounds
  // to 3, and DISTINCT halves that to ~2 (the true distinct count).
  EXPECT_EQ(text,
            "Distinct (rows~2)\n"
            "  Project [k1] (rows~3, cols=1)\n"
            "    Join SEMI on (fact.k1 = sel.k1) (rows~3, cols=2)\n"
            "      Scan fact [k1, x0] filter=(fact.x0 > 0.5) "
            "(rows~5/8, cols=2/4)\n"
            "      Scan sel [*] (rows~2/2, cols=1/1)\n"
            "-- rules: pushed=1\n");
}

TEST_F(PlannerExplainTest, TotalAggregateGolden) {
  // The absorption/total-aggregate shape: global SUMs, no GROUP BY.
  std::string text = ExplainText(
      "EXPLAIN SELECT SUM(fact.s * m.c) AS s, SUM(m.c) AS c FROM fact "
      "JOIN m ON fact.k1 = m.k1");
  EXPECT_EQ(text,
            "Project [s, c] (rows~1, cols=2)\n"
            "  Aggregate keys=[] aggs=2 (rows~1, cols=2)\n"
            "    Join INNER on (fact.k1 = m.k1) (rows~8, cols=4)\n"
            "      Scan fact [k1, s] (rows~8/8, cols=2/4)\n"
            "      Scan m [k1, c] (rows~3/3, cols=2/3)\n");
}

TEST_F(PlannerExplainTest, ExplainAnalyzeGolden) {
  // EXPLAIN ANALYZE executes the plan and annotates the data-section nodes
  // (and the root) with observed row counts next to the estimates. The
  // filter keeps 5 of 8 fact rows; 3 distinct k1 groups survive.
  std::string text = ExplainText(
      "EXPLAIN ANALYZE SELECT fact.k1, SUM(fact.s * m.c) AS s FROM fact "
      "JOIN m ON fact.k1 = m.k1 WHERE fact.x0 > 0.5 GROUP BY fact.k1");
  EXPECT_EQ(text,
            "Project [k1, s] (rows~1, act=3, cols=2)\n"
            "  Aggregate keys=[fact.k1] aggs=1 (rows~1, cols=2)\n"
            "    Join INNER on (fact.k1 = m.k1) (rows~5, act=5, cols=5)\n"
            "      Scan fact [k1, s, x0] filter=(fact.x0 > 0.5) "
            "(rows~5/8, act=5, cols=3/4)\n"
            "      Scan m [k1, c] (rows~3/3, act=3, cols=2/3)\n"
            "-- rules: pushed=1\n");
}

// ---------------------------------------------------------------------------
// DP join ordering on a 4-relation snowflake: the written order is
// deliberately suboptimal and the enumerator must move the filtered
// dimension first. Pins both the chosen order and the cardinality estimates.
// ---------------------------------------------------------------------------

TEST(SnowflakeExplainTest, DpReordersFilteredDimensionFirst) {
  Database db(EngineProfile::DSwap());
  const size_t kRows = 1000;
  std::vector<int64_t> k1(kRows), k2(kRows), k3(kRows);
  std::vector<double> v(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    k1[i] = static_cast<int64_t>(i % 50);
    k2[i] = static_cast<int64_t>(i % 5);
    k3[i] = static_cast<int64_t>(i % 200);
    v[i] = static_cast<double>(i);
  }
  db.RegisterTable(TableBuilder("fact")
                       .AddInts("k1", k1)
                       .AddInts("k2", k2)
                       .AddInts("k3", k3)
                       .AddDoubles("v", v)
                       .Build());
  auto dim = [&](const char* name, const char* key, int64_t n) {
    std::vector<int64_t> k(static_cast<size_t>(n)), a(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      k[static_cast<size_t>(i)] = i;
      a[static_cast<size_t>(i)] = i;
    }
    db.RegisterTable(TableBuilder(name).AddInts(key, k).AddInts("a", a).Build());
  };
  dim("d1", "k1", 50);
  dim("d2", "k2", 5);
  dim("d3", "k3", 200);

  // Written order d1, d2, d3. The filter reduces d2 to ~1 row, so joining it
  // first shrinks every later intermediate: cost(d2,d1,d3) = 200+200+200
  // versus cost(d1,d2,d3) = 1000+200+200. Ties after d2 break toward the
  // lowest-index clause (d1 before d3).
  auto t = db.Query(
      "EXPLAIN SELECT SUM(fact.v) AS s FROM fact "
      "JOIN d1 ON fact.k1 = d1.k1 "
      "JOIN d2 ON fact.k2 = d2.k2 "
      "JOIN d3 ON fact.k3 = d3.k3 WHERE d2.a = 0");
  std::string text;
  for (size_t r = 0; r < t->rows; ++r) {
    text += t->GetValue(r, 0).s;
    text += "\n";
  }
  EXPECT_EQ(text,
            "Project [s] (rows~1, cols=1)\n"
            "  Aggregate keys=[] aggs=1 (rows~1, cols=1)\n"
            "    Join INNER on (fact.k3 = d3.k3) (rows~200, cols=8)\n"
            "      Join INNER on (fact.k1 = d1.k1) (rows~200, cols=7)\n"
            "        Join INNER on (fact.k2 = d2.k2) (rows~200, cols=6)\n"
            "          Scan fact [*] (rows~1000/1000, cols=4/4)\n"
            "          Scan d2 [*] filter=(d2.a = 0) (rows~1/5, cols=2/2)\n"
            "        Scan d1 [k1] (rows~50/50, cols=1/2)\n"
            "      Scan d3 [k3] (rows~200/200, cols=1/2)\n"
            "-- rules: pushed=1 joins-reordered-dp\n");
}

TEST_F(PlannerExplainTest, ExplainTextIsAFixedPointUnderRoundTrip) {
  const char* queries[] = {
      "SELECT fact.k1, SUM(fact.s * m.c) AS s FROM fact "
      "JOIN m ON fact.k1 = m.k1 WHERE fact.x0 > 0.5 GROUP BY fact.k1",
      "SELECT DISTINCT fact.k1 FROM fact SEMI JOIN sel ON fact.k1 = sel.k1 "
      "WHERE fact.x0 > 0.5",
      "SELECT SUM(fact.s * m.c) AS s, SUM(m.c) AS c FROM fact "
      "JOIN m ON fact.k1 = m.k1",
      "SELECT k1, COUNT(*) AS c FROM fact WHERE x0 > 0.5 AND k2 = 1 "
      "GROUP BY k1 ORDER BY k1 LIMIT 2",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    // EXPLAIN of the original and of its printed round-trip must render the
    // identical plan text.
    sql::Statement ast = sql::Parse(q);
    std::string printed = sql::ToSql(ast);
    EXPECT_EQ(ExplainText("EXPLAIN " + std::string(q)),
              ExplainText("EXPLAIN " + printed));
  }
}

TEST_F(PlannerExplainTest, ExplainStatementRoundTripsThroughPrinter) {
  const std::string q = "EXPLAIN SELECT fact.k1 FROM fact WHERE fact.x0 > 0.5";
  sql::Statement ast = sql::Parse(q);
  ASSERT_EQ(ast.kind, sql::Statement::Kind::kExplain);
  std::string printed = sql::ToSql(ast);
  EXPECT_EQ(printed, sql::ToSql(sql::Parse(printed)));
  auto t = db_->Query(printed);
  ASSERT_GE(t->rows, 1u);
  EXPECT_EQ(t->cols[0].name, "plan");
}

// ---------------------------------------------------------------------------
// Rewrite-rule unit tests.
// ---------------------------------------------------------------------------

TEST(PlannerRulesTest, ConstantFoldingMirrorsEvalSemantics) {
  struct Case {
    const char* in;
    const char* out;
  };
  const Case cases[] = {
      {"1 + 2 * 3", "7"},
      {"2 = 2", "1"},
      {"3 < 2", "0"},
      {"1 / 2", "0.5"},       // '/' promotes to double, as in EvalExpr
      {"7 % 4", "3"},
      {"- (2 + 3)", "-5"},
      {"NOT 0", "1"},
      {"a = 1 + 1", "(a = 2)"},
      {"1 = 1 AND a > 2", "(a > 2)"},
      {"1 = 2 AND a > 2", "0"},
      {"1 = 1 OR a > 2", "1"},
      {"0 OR a > 2", "(a > 2)"},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(c.in);
    int folds = 0;
    sql::ExprPtr folded =
        plan::FoldConstants(sql::ParseExpr(c.in), /*bool_ctx=*/true, &folds);
    EXPECT_EQ(sql::ToSql(*folded), c.out);
    EXPECT_GT(folds, 0);
  }
  // Division by zero must not fold (the engine yields NULL at runtime).
  int folds = 0;
  sql::ExprPtr kept =
      plan::FoldConstants(sql::ParseExpr("1 / 0"), /*bool_ctx=*/true, &folds);
  EXPECT_EQ(sql::ToSql(*kept), "(1 / 0)");
  // Outside boolean context AND/OR must not short-circuit (join conditions
  // keep their equi conjuncts even when a sibling folds to FALSE).
  folds = 0;
  sql::ExprPtr on = plan::FoldConstants(sql::ParseExpr("a = b AND 1 = 2"),
                                        /*bool_ctx=*/false, &folds);
  EXPECT_EQ(sql::ToSql(*on), "((a = b) AND 0)");
}

TEST(PlannerRulesTest, TruthyConjunctsAreDroppedNotCountedAsPushdowns) {
  Database db(EngineProfile::DSwap());
  db.RegisterTable(TableBuilder("r").AddInts("a", {1, 2}).Build());
  auto t = db.Query("EXPLAIN SELECT a FROM r WHERE 1 = 1");
  std::string text;
  for (size_t r = 0; r < t->rows; ++r) text += t->GetValue(r, 0).s + "\n";
  EXPECT_EQ(text.find("pushed"), std::string::npos) << text;
  EXPECT_EQ(text.find("filter="), std::string::npos) << text;
  EXPECT_NE(text.find("folded="), std::string::npos) << text;
  EXPECT_EQ(db.PlanStatsTotals().predicates_pushed, 0u);
}

TEST(PlannerRulesTest, GreedyJoinReorderJoinsSmallestRelationFirst) {
  Database db(EngineProfile::DSwap());
  std::vector<int64_t> big_a(100), mid_a(10), tiny_a(2);
  for (size_t i = 0; i < big_a.size(); ++i) {
    big_a[i] = static_cast<int64_t>(i % 10);
  }
  for (size_t i = 0; i < mid_a.size(); ++i) {
    mid_a[i] = static_cast<int64_t>(i);
  }
  tiny_a = {3, 4};
  db.RegisterTable(TableBuilder("big").AddInts("a", big_a).Build());
  db.RegisterTable(TableBuilder("mid").AddInts("a", mid_a).Build());
  db.RegisterTable(TableBuilder("tiny").AddInts("a", tiny_a).Build());

  auto t = db.Query(
      "EXPLAIN SELECT COUNT(*) AS c FROM big JOIN mid ON big.a = mid.a "
      "JOIN tiny ON big.a = tiny.a");
  std::string text;
  for (size_t r = 0; r < t->rows; ++r) text += t->GetValue(r, 0).s + "\n";
  size_t tiny_pos = text.find("Scan tiny");
  size_t mid_pos = text.find("Scan mid");
  ASSERT_NE(tiny_pos, std::string::npos);
  ASSERT_NE(mid_pos, std::string::npos);
  EXPECT_LT(tiny_pos, mid_pos) << text;
  EXPECT_NE(text.find("joins-reordered"), std::string::npos) << text;

  // And the reordered plan returns the same count.
  auto c = db.Query(
      "SELECT COUNT(*) AS c FROM big JOIN mid ON big.a = mid.a "
      "JOIN tiny ON big.a = tiny.a");
  EXPECT_EQ(c->GetValue(0, 0).i, 20);  // a=3 and a=4 appear 10x each in big
}

TEST(PlannerStatsTest, ProjectionPruningSkipsDecompression) {
  // D-Swap compresses loaded tables; a planned aggregate over one of four
  // columns must decode exactly that column.
  EngineProfile on = EngineProfile::DSwap();
  EngineProfile off = EngineProfile::DSwap();
  off.use_planner = false;
  Database planned(on), unplanned(off);
  for (Database* db : {&planned, &unplanned}) {
    db->LoadTable(TableBuilder("wide")
                      .AddInts("a", {1, 2, 3, 4})
                      .AddDoubles("v", {1.5, 2.5, 3.5, 4.5})
                      .AddDoubles("w", {0.1, 0.2, 0.3, 0.4})
                      .AddInts("u", {7, 8, 9, 10})
                      .Build());
    db->Query("SELECT SUM(v) AS sv FROM wide WHERE a > 1");
  }
  plan::PlanStats with_planner = planned.PlanStatsTotals();
  plan::PlanStats without = unplanned.PlanStatsTotals();
  EXPECT_EQ(with_planner.queries_planned, 1u);
  EXPECT_EQ(with_planner.cols_decompressed, 2u);  // a (filter) + v (agg)
  EXPECT_EQ(with_planner.cols_pruned, 2u);        // w, u skipped
  EXPECT_EQ(without.cols_decompressed, 4u);       // unplanned decodes all
  EXPECT_EQ(without.queries_planned, 0u);
  EXPECT_LT(with_planner.cells_decompressed, without.cells_decompressed);
  EXPECT_EQ(with_planner.predicates_pushed, 1u);
  // Fused scan filter: only rows surviving a > 1 leave the scan.
  EXPECT_EQ(with_planner.rows_scan_input, 4u);
  EXPECT_EQ(with_planner.rows_scan_output, 3u);
}

TEST(PlannerRulesTest, DopEstimateFollowsMorselPolicy) {
  plan::ParallelPolicy p;
  p.threads = 4;
  p.morsel_rows = 16384;
  p.threshold_rows = 8192;
  EXPECT_EQ(p.DopForRows(-1), 1);       // unknown cardinality: stay serial
  EXPECT_EQ(p.DopForRows(4000), 1);     // below threshold
  EXPECT_EQ(p.DopForRows(8192), 1);     // one morsel
  EXPECT_EQ(p.DopForRows(20000), 2);    // two morsels, capped by count
  EXPECT_EQ(p.DopForRows(1000000), 4);  // capped by thread budget
  p.threads = 1;
  EXPECT_EQ(p.DopForRows(1000000), 1);  // serial engine never fans out
}

TEST(PlannerEngineTest, ExplainSurfacesDopOnLargeScansOnly) {
  Database db(EngineProfile::DSwap());
  std::vector<int64_t> big_a(100000), big_b(100000);
  for (size_t i = 0; i < big_a.size(); ++i) {
    big_a[i] = static_cast<int64_t>(i % 97);
    big_b[i] = static_cast<int64_t>(i % 13);
  }
  db.RegisterTable(
      TableBuilder("big").AddInts("a", big_a).AddInts("b", big_b).Build());
  db.RegisterTable(TableBuilder("tiny").AddInts("a", {1, 2, 3}).Build());
  auto text = [&](const std::string& sql) {
    auto t = db.Query(sql);
    std::string out;
    for (size_t r = 0; r < t->rows; ++r) out += t->GetValue(r, 0).s + "\n";
    return out;
  };
  // 100k rows = 7 morsels at the default 16384, more than the thread budget:
  // the scan and the aggregate above it advertise the full pool-clamped DOP.
  std::string big_plan = text(
      "EXPLAIN SELECT a, COUNT(*) AS c FROM big WHERE b > 5 GROUP BY a");
  std::string want = "dop=" + std::to_string(db.exec_threads());
  if (db.exec_threads() > 1) {
    EXPECT_NE(big_plan.find(want), std::string::npos) << big_plan;
  }
  // Tiny tables stay serial and render exactly as before (golden stability).
  std::string tiny_plan = text("EXPLAIN SELECT a FROM tiny WHERE a > 1");
  EXPECT_EQ(tiny_plan.find("dop="), std::string::npos) << tiny_plan;
}

TEST(PlannerEngineTest, IntraQueryThreadsClampedToPoolSize) {
  EngineProfile p = EngineProfile::DSwap();
  p.exec_threads = 1 << 20;
  Database db(p);
  unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    EXPECT_LE(db.exec_threads(), static_cast<int>(hw) * 2);
  }
  EXPECT_GE(db.exec_threads(), 1);
  // A parallel-cutoff-sized aggregate must not deadlock or over-shard.
  std::vector<int64_t> a(70000);
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<int64_t>(i % 97);
  db.RegisterTable(TableBuilder("big").AddInts("a", a).Build());
  auto t = db.Query("SELECT a, COUNT(*) AS c FROM big GROUP BY a");
  EXPECT_EQ(t->rows, 97u);
}

// ---------------------------------------------------------------------------
// Full training run: planner on vs off must grow bit-identical models.
// ---------------------------------------------------------------------------

TEST(PlannerTrainEquivalenceTest, PlannerOnOffGrowsIdenticalModels) {
  EngineProfile on = EngineProfile::DSwap();
  EngineProfile off = EngineProfile::DSwap();
  off.use_planner = false;
  Database db_on(on), db_off(off);
  test_util::BuildSmallSnowflake(&db_on, /*seed=*/123, /*rows=*/2000);
  test_util::BuildSmallSnowflake(&db_off, /*seed=*/123, /*rows=*/2000);
  Dataset ds_on = test_util::MakeSnowflakeDataset(&db_on);
  Dataset ds_off = test_util::MakeSnowflakeDataset(&db_off);

  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 3;
  params.num_leaves = 4;
  TrainResult res_on = Train(params, ds_on);
  TrainResult res_off = Train(params, ds_off);

  // Same structure, same predictions, bitwise.
  ASSERT_EQ(res_on.model.trees.size(), res_off.model.trees.size());
  EXPECT_EQ(res_on.model.ToString(), res_off.model.ToString());
  core::JoinedEval eval_on = core::MaterializeJoin(ds_on);
  core::JoinedEval eval_off = core::MaterializeJoin(ds_off);
  ASSERT_EQ(eval_on.rows(), eval_off.rows());
  for (size_t r = 0; r < eval_on.rows(); ++r) {
    ASSERT_EQ(eval_on.Predict(res_on.model, r),
              eval_off.Predict(res_off.model, r))
        << "row " << r;
  }
  // The planner must have been active (and have pruned something) on the
  // planned run only.
  EXPECT_GT(res_on.plan_stats.queries_planned, 0u);
  EXPECT_EQ(res_off.plan_stats.queries_planned, 0u);
}

}  // namespace
}  // namespace joinboost
