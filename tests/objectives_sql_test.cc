#include <gtest/gtest.h>

#include <cmath>

#include "exec/engine.h"
#include "semiring/objectives.h"
#include "semiring/sql_gen.h"
#include "storage/table.h"
#include "joinboost.h"
#include "util/rng.h"

namespace joinboost {
namespace {

/// The SQL expressions each objective generates must compute exactly what
/// its C++ Gradient/Hessian functions compute — the factorized trainers use
/// the SQL, the baselines use the C++, and Figure 8c's "identical rmse"
/// claim hinges on their agreement.
class ObjectiveSqlTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ObjectiveSqlTest, SqlMatchesCppGradientsAndHessians) {
  auto obj = semiring::MakeObjective(GetParam(), 0.0);
  Rng rng(77);
  const size_t n = 256;
  std::vector<double> y(n), pred(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = rng.NextDouble() * 10 + 0.5;   // positive for poisson/gamma
    pred[i] = rng.NextDouble() * 2 + 0.1;
  }
  exec::Database db;
  db.RegisterTable(TableBuilder("t")
                       .AddDoubles("y", y)
                       .AddDoubles("pred", pred)
                       .Build());
  auto res = db.Query("SELECT " + obj->GradientSql("y", "pred") + " AS g, " +
                      obj->HessianSql("y", "pred") + " AS h FROM t");
  ASSERT_EQ(res->rows, n);
  for (size_t i = 0; i < n; ++i) {
    double g_sql = res->GetValue(i, 0).AsDouble();
    double h_sql = res->GetValue(i, 1).AsDouble();
    double g_cpp = obj->Gradient(y[i], pred[i]);
    double h_cpp = obj->Hessian(y[i], pred[i]);
    EXPECT_NEAR(g_sql, g_cpp, 1e-9 * std::max(1.0, std::fabs(g_cpp)))
        << GetParam() << " row " << i;
    EXPECT_NEAR(h_sql, h_cpp, 1e-9 * std::max(1.0, std::fabs(h_cpp)))
        << GetParam() << " row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllObjectives, ObjectiveSqlTest,
                         ::testing::ValuesIn(semiring::ObjectiveNames()));

TEST(GeneralObjectiveTrainingTest, NonRmseObjectivesReduceLoss) {
  // End-to-end: the general gradient/hessian path (§ Appendix B) on a
  // snowflake schema for a few representative objectives.
  for (const char* name : {"mae", "huber", "fair", "quantile"}) {
    exec::Database db(EngineProfile::DSwap());
    Rng rng(5);
    const size_t n = 800;
    std::vector<int64_t> k(n);
    std::vector<double> x(n), y(n);
    std::vector<int64_t> dk = {0, 1, 2, 3};
    std::vector<double> df = {10, 20, 30, 40};
    for (size_t i = 0; i < n; ++i) {
      k[i] = rng.NextInt(0, 3);
      x[i] = rng.NextDouble() * 5;
      y[i] = 2 * x[i] + df[static_cast<size_t>(k[i])] + rng.NextGaussian();
    }
    db.RegisterTable(TableBuilder("fact")
                         .AddInts("k", k)
                         .AddDoubles("x", x)
                         .AddDoubles("y", y)
                         .Build());
    db.RegisterTable(
        TableBuilder("dim").AddInts("k", dk).AddDoubles("f", df).Build());
    Dataset ds(&db);
    ds.AddTable("fact", {"x"}, "y");
    ds.AddTable("dim", {"f"});
    ds.AddJoin("fact", "dim", {"k"});

    core::TrainParams params;
    params.objective = name;
    params.boosting = "gbdt";
    params.num_iterations = 15;
    params.num_leaves = 4;
    params.learning_rate = 0.3;
    TrainResult res = Train(params, ds);

    auto obj = semiring::MakeObjective(name, 0.0);
    core::JoinedEval eval = core::MaterializeJoin(ds);
    double loss_start = 0, loss_end = 0;
    for (size_t i = 0; i < eval.rows(); ++i) {
      loss_start += obj->Loss(eval.YValue(i), res.model.base_score);
      loss_end += obj->Loss(eval.YValue(i), eval.Predict(res.model, i));
    }
    EXPECT_LT(loss_end, 0.9 * loss_start) << name;
  }
}

TEST(GeneralObjectiveTrainingTest, UpdateStrategiesAgreeOnGeneralPath) {
  // The pred/g/h recomputation must be identical across update strategies.
  std::vector<double> rmse;
  for (const char* strategy : {"swap", "create", "update"}) {
    exec::Database db(EngineProfile::DSwap());
    Rng rng(11);
    const size_t n = 400;
    std::vector<int64_t> k(n);
    std::vector<double> y(n);
    std::vector<int64_t> dk = {0, 1, 2};
    std::vector<double> df = {1, 5, 9};
    for (size_t i = 0; i < n; ++i) {
      k[i] = rng.NextInt(0, 2);
      y[i] = df[static_cast<size_t>(k[i])] + rng.NextGaussian() * 0.3;
    }
    db.RegisterTable(
        TableBuilder("fact").AddInts("k", k).AddDoubles("y", y).Build());
    db.RegisterTable(
        TableBuilder("dim").AddInts("k", dk).AddDoubles("f", df).Build());
    Dataset ds(&db);
    ds.AddTable("fact", {}, "y");
    ds.AddTable("dim", {"f"});
    ds.AddJoin("fact", "dim", {"k"});

    core::TrainParams params;
    params.objective = "huber";
    params.objective_param = 2.0;
    params.boosting = "gbdt";
    params.num_iterations = 6;
    params.num_leaves = 3;
    params.learning_rate = 0.5;
    params.update_strategy = strategy;
    TrainResult res = Train(params, ds);
    core::JoinedEval eval = core::MaterializeJoin(ds);
    rmse.push_back(eval.Rmse(res.model));
  }
  EXPECT_NEAR(rmse[0], rmse[1], 1e-9);
  EXPECT_NEAR(rmse[0], rmse[2], 1e-9);
}

}  // namespace
}  // namespace joinboost
