// Batched split evaluation (PR 4): the one-histogram-query-per-relation path
// (GROUPING SETS + C++ threshold kernel) must be bit-identical to the
// per-feature SQL path — full trains across {planner on/off} x {1, N
// threads} — and must issue O(#relations) split queries per leaf. Plus unit
// coverage of the BestSplitFromHistogram kernel's SQL-twin semantics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "core/session.h"
#include "core/split.h"
#include "core/trainer.h"
#include "joinboost.h"
#include "storage/table.h"
#include "test_util.h"
#include "util/rng.h"

namespace joinboost {
namespace {

using exec::Database;

EngineProfile Profile(bool use_planner, int threads) {
  EngineProfile p = EngineProfile::DSwap();
  p.use_planner = use_planner;
  p.exec_threads = threads;
  // Shrink morsel knobs so test-sized inputs genuinely fan out.
  p.morsel_rows = 256;
  p.parallel_threshold_rows = 64;
  return p;
}

/// Snowflake with a categorical dimension feature, so both kernel paths
/// (window prefix sums and equality splits) are exercised end to end.
void BuildCatSnowflake(Database* db, uint64_t seed, size_t rows) {
  Rng rng(seed);
  const int64_t kD1 = 13, kD2 = 7;
  const char* cats[] = {"red", "green", "blue", "teal"};
  std::vector<int64_t> k1(rows), k2(rows);
  std::vector<double> x0(rows), y(rows);
  std::vector<int64_t> d1k, d2k;
  std::vector<double> f1, f2;
  std::vector<std::string> g1;
  for (int64_t i = 0; i < kD1; ++i) {
    d1k.push_back(i);
    f1.push_back(static_cast<double>(rng.NextInt(1, 500)));
    g1.push_back(cats[static_cast<size_t>(rng.NextInt(0, 3))]);
  }
  for (int64_t i = 0; i < kD2; ++i) {
    d2k.push_back(i);
    f2.push_back(static_cast<double>(rng.NextInt(1, 500)));
  }
  for (size_t i = 0; i < rows; ++i) {
    k1[i] = rng.NextInt(0, kD1 - 1);
    k2[i] = rng.NextInt(0, kD2 - 1);
    x0[i] = rng.NextDouble() * 8;
    double cat_effect = g1[static_cast<size_t>(k1[i])] == "red" ? 5.0 : 0.0;
    y[i] = 2.0 * x0[i] + cat_effect + 0.01 * f1[static_cast<size_t>(k1[i])] -
           0.015 * f2[static_cast<size_t>(k2[i])] + rng.NextGaussian();
  }
  db->RegisterTable(TableBuilder("fact")
                        .AddInts("k1", k1)
                        .AddInts("k2", k2)
                        .AddDoubles("x0", x0)
                        .AddDoubles("y", y)
                        .Build());
  db->RegisterTable(TableBuilder("d1")
                        .AddInts("k1", d1k)
                        .AddDoubles("f1", f1)
                        .AddStrings("g1", g1)
                        .Build());
  db->RegisterTable(
      TableBuilder("d2").AddInts("k2", d2k).AddDoubles("f2", f2).Build());
}

Dataset MakeCatDataset(Database* db) {
  Dataset ds(db);
  ds.AddTable("fact", {"x0"}, "y");
  ds.AddTable("d1", {"f1", "g1"});
  ds.AddTable("d2", {"f2"});
  ds.AddJoin("fact", "d1", {"k1"});
  ds.AddJoin("fact", "d2", {"k2"});
  return ds;
}

void ExpectModelsBitIdentical(const core::Ensemble& a, const core::Ensemble& b,
                              const std::string& label) {
  ASSERT_EQ(a.trees.size(), b.trees.size()) << label;
  EXPECT_EQ(a.base_score, b.base_score) << label;
  for (size_t t = 0; t < a.trees.size(); ++t) {
    const auto& ta = a.trees[t].nodes;
    const auto& tb = b.trees[t].nodes;
    ASSERT_EQ(ta.size(), tb.size()) << label << " tree " << t;
    for (size_t n = 0; n < ta.size(); ++n) {
      SCOPED_TRACE(label + " tree " + std::to_string(t) + " node " +
                   std::to_string(n));
      EXPECT_EQ(ta[n].is_leaf, tb[n].is_leaf);
      EXPECT_EQ(ta[n].feature, tb[n].feature);
      EXPECT_EQ(ta[n].relation, tb[n].relation);
      EXPECT_EQ(ta[n].categorical, tb[n].categorical);
      EXPECT_EQ(ta[n].threshold, tb[n].threshold);  // bit-exact doubles
      EXPECT_EQ(ta[n].category, tb[n].category);
      EXPECT_EQ(ta[n].category_str, tb[n].category_str);
      EXPECT_EQ(ta[n].gain, tb[n].gain);
      EXPECT_EQ(ta[n].prediction, tb[n].prediction);
      EXPECT_EQ(ta[n].count, tb[n].count);
      EXPECT_EQ(ta[n].sum, tb[n].sum);
    }
  }
}

/// Full gbdt train: the batched path must reproduce the per-feature path
/// bit for bit, with the planner on or off and for 1 or N threads.
TEST(BatchedSplitTest, BatchedMatchesPerFeatureBitIdentical) {
  struct Config {
    bool planner;
    int threads;
  };
  const Config configs[] = {{true, 1}, {true, 4}, {false, 1}, {false, 4}};
  for (const Config& c : configs) {
    std::string label = std::string("planner=") + (c.planner ? "on" : "off") +
                        " threads=" + std::to_string(c.threads);
    core::Ensemble models[2];
    size_t queries[2] = {0, 0};
    for (int batched = 0; batched < 2; ++batched) {
      Database db(Profile(c.planner, c.threads));
      BuildCatSnowflake(&db, /*seed=*/2024, /*rows=*/4000);
      Dataset ds = MakeCatDataset(&db);
      core::TrainParams params;
      params.boosting = "gbdt";
      params.num_iterations = 3;
      params.num_leaves = 5;
      params.batch_split_evaluation = batched == 1;
      TrainResult res = Train(params, ds);
      models[batched] = std::move(res.model);
      queries[batched] = res.feature_queries;
    }
    ExpectModelsBitIdentical(models[0], models[1], label);
    EXPECT_LT(queries[1], queries[0])
        << label << ": batching should issue fewer split queries";
  }
}

/// Regression pin: with batching, split queries per leaf evaluation equal
/// the number of relations carrying candidate features, not the number of
/// features (TreeGrower::split_queries()).
TEST(BatchedSplitTest, SplitQueriesPerLeafIsRelationCount) {
  Database db(Profile(/*use_planner=*/true, /*threads=*/1));
  BuildCatSnowflake(&db, /*seed=*/7, /*rows=*/2000);
  Dataset ds = MakeCatDataset(&db);
  std::vector<std::string> features = ds.graph().AllFeatures();
  std::set<int> rels;
  for (const auto& f : features) rels.insert(ds.graph().RelationOfFeature(f));
  ASSERT_GT(features.size(), rels.size()) << "need multi-feature relations";

  for (int batched = 0; batched < 2; ++batched) {
    core::TrainParams params;
    params.boosting = "gbdt";
    params.num_leaves = 2;
    params.max_depth = 1;  // children at depth 1 are never evaluated
    params.num_iterations = 1;
    params.batch_split_evaluation = batched == 1;
    core::Session session(&ds, params);
    session.Prepare();
    core::TreeGrower grower(&session.fac(), params);
    grower.Grow(features, session.y_fact(), nullptr);
    // Exactly one leaf (the root) is evaluated: split_queries() is the
    // per-leaf query count.
    size_t per_leaf = grower.split_queries();
    if (batched == 1) {
      EXPECT_EQ(per_leaf, rels.size());
    } else {
      EXPECT_EQ(per_leaf, features.size());
    }
    session.Cleanup();
  }
}

// ---------------------------------------------------------------------------
// Kernel unit tests: SQL-twin semantics of BestSplitFromHistogram.
// ---------------------------------------------------------------------------

core::HistogramEntry Bin(double val, double c, double s) {
  core::HistogramEntry e;
  e.val = Value::Double(val);
  e.c = Value::Double(c);
  e.s = Value::Double(s);
  return e;
}

TEST(BatchedSplitKernelTest, NumericPrefixSumsAndArgmax) {
  core::CriterionParams p;
  p.c_total = 6;
  p.s_total = 12;
  p.min_leaf = 1;
  p.halved = true;
  // Bins arrive in group first-occurrence order, values unsorted.
  std::vector<core::HistogramEntry> bins = {Bin(3.0, 2, 2), Bin(1.0, 2, 8),
                                            Bin(2.0, 2, 2)};
  core::HistogramSplit hs = core::BestSplitFromHistogram(bins, false, p);
  ASSERT_TRUE(hs.valid);
  // Cumulative (c, s) by ascending val: (2,8) @1, (4,10) @2, (6,12) @3.
  // val=3 fails the c <= 5 bound; splitting at val=1 separates the high-s
  // group and must win.
  EXPECT_EQ(hs.val.d, 1.0);
  EXPECT_EQ(hs.c, 2.0);
  EXPECT_EQ(hs.s, 8.0);
  double expect = core::CriterionValue(2.0, 8.0, p);
  EXPECT_EQ(hs.criteria, expect);
  EXPECT_TRUE(std::isfinite(hs.criteria));
}

TEST(BatchedSplitKernelTest, TiesKeepFirstBinInGroupOrder) {
  core::CriterionParams p;
  p.c_total = 4;
  p.s_total = 0;
  p.min_leaf = 1;
  p.halved = true;
  // Symmetric histogram: cumulative (1, -1) at val=1 and (3, 1) at val=3
  // score identically (s^2/c + s^2/(C-c)); the stable DESC sort of the SQL
  // path keeps the first row in group order — val=3 arrives first here.
  std::vector<core::HistogramEntry> bins = {Bin(3.0, 1, 1), Bin(1.0, 1, -1),
                                            Bin(2.0, 1, 1)};
  core::HistogramSplit hs = core::BestSplitFromHistogram(bins, false, p);
  ASSERT_TRUE(hs.valid);
  EXPECT_EQ(hs.val.d, 3.0);  // first in bin order among equal criteria
  double tied = core::CriterionValue(1, -1, p);
  EXPECT_EQ(hs.criteria, tied);
}

TEST(BatchedSplitKernelTest, CategoricalSkipsPrefixSums) {
  core::CriterionParams p;
  p.c_total = 10;
  p.s_total = 10;
  p.min_leaf = 2;
  p.halved = true;
  std::vector<core::HistogramEntry> bins = {Bin(0, 1, 9), Bin(1, 4, 8),
                                            Bin(2, 5, -7)};
  core::HistogramSplit hs = core::BestSplitFromHistogram(bins, true, p);
  ASSERT_TRUE(hs.valid);
  // Bin 0 fails min_leaf; bins 1 and 2 compete on their own (c, s).
  double crit1 = core::CriterionValue(4, 8, p);
  double crit2 = core::CriterionValue(5, -7, p);
  EXPECT_EQ(hs.criteria, std::max(crit1, crit2));
}

TEST(BatchedSplitKernelTest, OutOfBoundsBinsAreInvalid) {
  core::CriterionParams p;
  p.c_total = 4;
  p.s_total = 4;
  p.min_leaf = 3;  // no prefix c lands in [3, 1]: nothing passes
  p.halved = true;
  std::vector<core::HistogramEntry> bins = {Bin(1.0, 2, 2), Bin(2.0, 2, 2)};
  core::HistogramSplit hs = core::BestSplitFromHistogram(bins, false, p);
  EXPECT_FALSE(hs.valid);
}

TEST(BatchedSplitKernelTest, DivisionByZeroMirrorsSqlNull) {
  core::CriterionParams p;
  p.c_total = 2;
  p.s_total = 2;
  p.lambda = 0;
  p.min_leaf = 0;  // lets c = 0 pass the bounds
  p.halved = true;
  // c = 0 with lambda = 0 divides by zero: SQL yields NULL, and a NULL
  // criteria row sorts first under ORDER BY ... DESC — the kernel must
  // surface it (the trainer then rejects the non-finite candidate).
  std::vector<core::HistogramEntry> bins = {Bin(1.0, 0, 1), Bin(2.0, 1, 1)};
  core::HistogramSplit hs = core::BestSplitFromHistogram(bins, false, p);
  ASSERT_TRUE(hs.valid);
  EXPECT_EQ(hs.val.d, 1.0);
  EXPECT_TRUE(std::isnan(hs.criteria));
}

}  // namespace
}  // namespace joinboost
