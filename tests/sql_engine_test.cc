#include <gtest/gtest.h>

#include "exec/engine.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "storage/table.h"

namespace joinboost {
namespace {

using exec::Database;

class SqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(EngineProfile::DSwap());
    db_->RegisterTable(TableBuilder("r")
                           .AddInts("a", {1, 1, 2, 2})
                           .AddInts("b", {2, 3, 1, 2})
                           .Build());
    db_->RegisterTable(TableBuilder("s")
                           .AddInts("a", {1, 1, 2})
                           .AddInts("c", {2, 1, 3})
                           .Build());
    db_->RegisterTable(TableBuilder("t")
                           .AddInts("a", {1, 1, 2})
                           .AddInts("d", {1, 2, 2})
                           .Build());
  }
  std::unique_ptr<Database> db_;
};

TEST_F(SqlEngineTest, SimpleSelect) {
  auto res = db_->Query("SELECT a, b FROM r WHERE b >= 2");
  EXPECT_EQ(res->rows, 3u);
  EXPECT_EQ(res->cols.size(), 2u);
}

TEST_F(SqlEngineTest, SelectExpressionNoFrom) {
  auto res = db_->Query("SELECT 1 + 2 AS x, 3.5 * 2 AS y");
  EXPECT_EQ(res->rows, 1u);
  EXPECT_EQ(res->GetValue(0, 0).i, 3);
  EXPECT_DOUBLE_EQ(res->GetValue(0, 1).d, 7.0);
}

TEST_F(SqlEngineTest, GroupByAggregate) {
  auto res = db_->Query(
      "SELECT a, SUM(b) AS s, COUNT(*) AS c FROM r GROUP BY a ORDER BY a");
  ASSERT_EQ(res->rows, 2u);
  EXPECT_EQ(res->GetValue(0, 0).i, 1);
  EXPECT_EQ(res->GetValue(0, 1).i, 5);
  EXPECT_EQ(res->GetValue(0, 2).i, 2);
  EXPECT_EQ(res->GetValue(1, 1).i, 3);
}

TEST_F(SqlEngineTest, GlobalAggregate) {
  auto res = db_->Query("SELECT SUM(b) AS s, COUNT(*) AS c, AVG(b) AS m FROM r");
  ASSERT_EQ(res->rows, 1u);
  EXPECT_EQ(res->GetValue(0, 0).i, 8);
  EXPECT_EQ(res->GetValue(0, 1).i, 4);
  EXPECT_DOUBLE_EQ(res->GetValue(0, 2).d, 2.0);
}

TEST_F(SqlEngineTest, JoinAggregate) {
  // r(a,b) join s(a,c): a=1 has 2x2 rows, a=2 has 2x1 rows -> 6 rows.
  auto res = db_->Query(
      "SELECT r.a AS a, COUNT(*) AS c FROM r JOIN s ON r.a = s.a "
      "GROUP BY r.a ORDER BY a");
  ASSERT_EQ(res->rows, 2u);
  EXPECT_EQ(res->GetValue(0, 1).i, 4);
  EXPECT_EQ(res->GetValue(1, 1).i, 2);
}

TEST_F(SqlEngineTest, ThreeWayJoinCount) {
  auto res = db_->Query(
      "SELECT COUNT(*) AS c FROM r JOIN s ON r.a = s.a JOIN t ON r.a = t.a");
  // a=1: 2*2*2=8, a=2: 2*1*1=2 -> 10
  EXPECT_EQ(res->GetValue(0, 0).i, 10);
}

TEST_F(SqlEngineTest, InSubquery) {
  auto res = db_->Query(
      "SELECT COUNT(*) AS c FROM r WHERE a IN (SELECT a FROM s WHERE c > 2)");
  EXPECT_EQ(res->GetValue(0, 0).i, 2);  // only a=2 qualifies
}

TEST_F(SqlEngineTest, CaseWhen) {
  auto res = db_->Query(
      "SELECT SUM(CASE WHEN b > 2 THEN 1 ELSE 0 END) AS big FROM r");
  EXPECT_EQ(res->GetValue(0, 0).i, 1);
}

TEST_F(SqlEngineTest, WindowPrefixSum) {
  auto res = db_->Query(
      "SELECT a, SUM(b) OVER (ORDER BY a) AS cum FROM "
      "(SELECT a, SUM(b) AS b FROM r GROUP BY a) ORDER BY a");
  ASSERT_EQ(res->rows, 2u);
  EXPECT_DOUBLE_EQ(res->GetValue(0, 1).d, 5.0);
  EXPECT_DOUBLE_EQ(res->GetValue(1, 1).d, 8.0);
}

TEST_F(SqlEngineTest, CreateTableAsAndDrop) {
  db_->Execute("CREATE TABLE tmp AS SELECT a, SUM(b) AS s FROM r GROUP BY a");
  auto res = db_->Query("SELECT COUNT(*) AS c FROM tmp");
  EXPECT_EQ(res->GetValue(0, 0).i, 2);
  db_->Execute("DROP TABLE tmp");
  EXPECT_FALSE(db_->catalog().Exists("tmp"));
}

TEST_F(SqlEngineTest, UpdateWithWhere) {
  db_->Execute("CREATE TABLE u AS SELECT a, b FROM r");
  auto res = db_->Execute("UPDATE u SET b = b + 10 WHERE a = 1");
  EXPECT_EQ(res.affected, 2u);
  auto sum = db_->QueryScalarDouble("SELECT SUM(b) AS s FROM u");
  EXPECT_DOUBLE_EQ(sum, 8 + 20);
}

TEST_F(SqlEngineTest, OrderByDescLimit) {
  auto res = db_->Query("SELECT a, b FROM r ORDER BY b DESC LIMIT 2");
  ASSERT_EQ(res->rows, 2u);
  EXPECT_EQ(res->GetValue(0, 1).i, 3);
}

TEST_F(SqlEngineTest, DistinctSelect) {
  auto res = db_->Query("SELECT DISTINCT a FROM r");
  EXPECT_EQ(res->rows, 2u);
}

TEST_F(SqlEngineTest, LeftJoinWherePredicateKeepsNullSemantics) {
  // Regression: a WHERE predicate on the nullable side of a LEFT JOIN must
  // run after the join. Pushing it into the right-hand scan (the engine's
  // old behaviour) empties the build side and null-extends every row.
  db_->RegisterTable(
      TableBuilder("small").AddInts("a", {1}).AddInts("z", {42}).Build());
  auto res = db_->Query(
      "SELECT r.a AS a FROM r LEFT JOIN small ON r.a = small.a "
      "WHERE small.z IS NULL ORDER BY a");
  ASSERT_EQ(res->rows, 2u);  // only the a=2 rows have no match
  EXPECT_EQ(res->GetValue(0, 0).i, 2);
  EXPECT_EQ(res->GetValue(1, 0).i, 2);
}

TEST_F(SqlEngineTest, ExplainReturnsPlanText) {
  auto res = db_->Query(
      "EXPLAIN SELECT r.a AS a, COUNT(*) AS c FROM r JOIN s ON r.a = s.a "
      "WHERE r.b >= 2 GROUP BY r.a");
  ASSERT_GE(res->rows, 4u);
  ASSERT_EQ(res->cols.size(), 1u);
  EXPECT_EQ(res->cols[0].name, "plan");
  std::string text;
  for (size_t r = 0; r < res->rows; ++r) text += res->GetValue(r, 0).s + "\n";
  EXPECT_NE(text.find("Aggregate"), std::string::npos) << text;
  EXPECT_NE(text.find("Join INNER"), std::string::npos) << text;
  EXPECT_NE(text.find("Scan r"), std::string::npos) << text;
  EXPECT_NE(text.find("filter="), std::string::npos) << text;
}

TEST_F(SqlEngineTest, LeftJoinProducesNulls) {
  db_->RegisterTable(
      TableBuilder("small").AddInts("a", {1}).AddInts("z", {42}).Build());
  auto res = db_->Query(
      "SELECT r.a AS a, small.z AS z FROM r LEFT JOIN small ON r.a = small.a "
      "ORDER BY a");
  ASSERT_EQ(res->rows, 4u);
  EXPECT_EQ(res->GetValue(0, 1).i, 42);
  EXPECT_TRUE(res->GetValue(3, 1).null);
}

TEST_F(SqlEngineTest, SemiAndAntiJoin) {
  db_->RegisterTable(
      TableBuilder("keys").AddInts("a", {2}).Build());
  auto semi = db_->Query(
      "SELECT COUNT(*) AS c FROM r SEMI JOIN keys ON r.a = keys.a");
  EXPECT_EQ(semi->GetValue(0, 0).i, 2);
  auto anti = db_->Query(
      "SELECT COUNT(*) AS c FROM r ANTI JOIN keys ON r.a = keys.a");
  EXPECT_EQ(anti->GetValue(0, 0).i, 2);
}

TEST_F(SqlEngineTest, StringDictionaryFilter) {
  db_->RegisterTable(TableBuilder("names")
                         .AddInts("id", {1, 2, 3})
                         .AddStrings("name", {"ann", "bob", "ann"})
                         .Build());
  auto res = db_->Query(
      "SELECT COUNT(*) AS c FROM names WHERE name = 'ann'");
  EXPECT_EQ(res->GetValue(0, 0).i, 2);
}

TEST_F(SqlEngineTest, QueryLogTagsAndTiming) {
  db_->ClearQueryLog();
  db_->Query("SELECT COUNT(*) AS c FROM r", "message");
  db_->Query("SELECT a FROM r", "feature");
  db_->Query("SELECT b FROM r", "feature");
  EXPECT_EQ(db_->CountForTag("message"), 1u);
  EXPECT_EQ(db_->CountForTag("feature"), 2u);
  EXPECT_GE(db_->TotalMsForTag("feature"), 0.0);
}

TEST_F(SqlEngineTest, ColumnSwap) {
  db_->Execute("CREATE TABLE f1 AS SELECT a, b FROM r");
  db_->Execute("CREATE TABLE f2 AS SELECT a, b + 100 AS b FROM r");
  db_->SwapColumns("f1", "b", "f2", "b");
  auto sum = db_->QueryScalarDouble("SELECT SUM(b) AS s FROM f1");
  EXPECT_DOUBLE_EQ(sum, 8 + 400);
}

TEST_F(SqlEngineTest, RoundTrippedQueriesExecuteIdentically) {
  // Every SELECT exercised by this suite must survive parse -> print ->
  // re-parse (fixed point on the printed text) AND the printed form must
  // produce the exact same result table when executed.
  const char* queries[] = {
      "SELECT a, b FROM r WHERE b >= 2",
      "SELECT 1 + 2 AS x, 3.5 * 2 AS y",
      "SELECT a, SUM(b) AS s, COUNT(*) AS c FROM r GROUP BY a ORDER BY a",
      "SELECT SUM(b) AS s, COUNT(*) AS c, AVG(b) AS m FROM r",
      "SELECT r.a AS a, COUNT(*) AS c FROM r JOIN s ON r.a = s.a "
      "GROUP BY r.a ORDER BY a",
      "SELECT COUNT(*) AS c FROM r JOIN s ON r.a = s.a JOIN t ON r.a = t.a",
      "SELECT COUNT(*) AS c FROM r WHERE a IN (SELECT a FROM s WHERE c > 2)",
      "SELECT SUM(CASE WHEN b > 2 THEN 1 ELSE 0 END) AS big FROM r",
      "SELECT a, SUM(b) OVER (ORDER BY a) AS cum FROM "
      "(SELECT a, SUM(b) AS b FROM r GROUP BY a) ORDER BY a",
      "SELECT a, b FROM r ORDER BY b DESC LIMIT 2",
      "SELECT DISTINCT a FROM r",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    sql::Statement ast = sql::Parse(q);
    std::string printed = sql::ToSql(ast);
    EXPECT_EQ(printed, sql::ToSql(sql::Parse(printed)));

    auto expect = db_->Query(q);
    auto got = db_->Query(printed);
    ASSERT_EQ(got->rows, expect->rows);
    ASSERT_EQ(got->cols.size(), expect->cols.size());
    for (size_t row = 0; row < expect->rows; ++row) {
      for (size_t col = 0; col < expect->cols.size(); ++col) {
        EXPECT_TRUE(got->GetValue(row, col) == expect->GetValue(row, col))
            << "row " << row << " col " << col;
      }
    }
  }
}

TEST_F(SqlEngineTest, RoundTrippedDmlExecutesIdentically) {
  // Statements with side effects: run the original and the printed form on
  // separate copies of the data and compare the end state.
  db_->Execute("CREATE TABLE u1 AS SELECT a, b FROM r");
  db_->Execute("CREATE TABLE u2 AS SELECT a, b FROM r");

  const std::string update1 = "UPDATE u1 SET b = b * 2 + 1 WHERE a = 1";
  sql::Statement ast = sql::Parse(update1);
  std::string printed = sql::ToSql(ast);
  EXPECT_EQ(printed, sql::ToSql(sql::Parse(printed)));

  // Point the printed form at the copy. The printer emits the table name
  // verbatim, so a plain substitution is safe here.
  size_t pos = printed.find("u1");
  ASSERT_NE(pos, std::string::npos);
  std::string update2 = printed;
  update2.replace(pos, 2, "u2");

  EXPECT_EQ(db_->Execute(update1).affected, db_->Execute(update2).affected);
  EXPECT_DOUBLE_EQ(db_->QueryScalarDouble("SELECT SUM(b) AS s FROM u1"),
                   db_->QueryScalarDouble("SELECT SUM(b) AS s FROM u2"));
}

TEST(SqlRoundTripTest, ParsePrintParse) {
  const char* queries[] = {
      "SELECT a, SUM(b) AS s FROM r GROUP BY a ORDER BY a DESC LIMIT 5",
      "SELECT r.a AS x FROM r JOIN s ON r.a = s.a WHERE r.b > 2 AND s.c < 5",
      "SELECT CASE WHEN a = 1 THEN 2.5 ELSE 0.5 END AS p FROM r",
      "SELECT a FROM r WHERE a IN (SELECT a FROM s) AND b IN (1, 2, 3)",
      "SELECT SUM(c) OVER (PARTITION BY a ORDER BY b) AS w FROM s",
      "CREATE TABLE x AS SELECT DISTINCT a FROM r",
      "UPDATE f SET s = s - 1.5, q = q + 2.25 WHERE d IN (SELECT d FROM m)",
      "DROP TABLE IF EXISTS msgs",
      "EXPLAIN SELECT a, SUM(b) AS s FROM r GROUP BY a ORDER BY a",
  };
  for (const char* q : queries) {
    sql::Statement s1 = sql::Parse(q);
    std::string printed = sql::ToSql(s1);
    sql::Statement s2 = sql::Parse(printed);
    EXPECT_EQ(printed, sql::ToSql(s2)) << "query: " << q;
  }
}

}  // namespace
}  // namespace joinboost
