#include <gtest/gtest.h>

#include "util/check.h"

#include "graph/join_graph.h"

namespace joinboost {
namespace graph {
namespace {

JoinGraph Snowflake() {
  JoinGraph g;
  g.AddRelation("fact", {"x"}, "y");
  g.AddRelation("d1", {"f1"});
  g.AddRelation("d2", {"f2"});
  g.AddRelation("d3", {"f3"});  // snowflaked off d1
  int e0 = g.AddEdge("fact", "d1", {"k1"});
  int e1 = g.AddEdge("fact", "d2", {"k2"});
  int e2 = g.AddEdge("d1", "d3", {"k3"});
  g.edge(e0).unique_b = true;  // d1 unique on k1
  g.edge(e1).unique_b = true;
  g.edge(e2).unique_b = true;
  return g;
}

TEST(JoinGraphTest, TreeDetection) {
  JoinGraph g = Snowflake();
  EXPECT_TRUE(g.IsTree());
  g.AddEdge("d2", "d3", {"k4"});  // creates a cycle
  EXPECT_FALSE(g.IsTree());
}

TEST(JoinGraphTest, AlphaAcyclicity) {
  JoinGraph g = Snowflake();
  EXPECT_TRUE(g.IsAlphaAcyclic());

  // Triangle R(A,B) S(B,C) T(A,C): the classic cyclic hypergraph.
  JoinGraph cyc;
  cyc.AddRelation("r", {});
  cyc.AddRelation("s", {});
  cyc.AddRelation("t", {});
  cyc.AddEdge("r", "s", {"b"});
  cyc.AddEdge("s", "t", {"c"});
  cyc.AddEdge("t", "r", {"a"});
  EXPECT_FALSE(cyc.IsAlphaAcyclic());
}

TEST(JoinGraphTest, DirectTowardsOrdersLeavesFirst) {
  JoinGraph g = Snowflake();
  auto dir = g.DirectTowards(0);
  EXPECT_EQ(dir.parent[0], -1);
  EXPECT_EQ(dir.parent[1], 0);
  EXPECT_EQ(dir.parent[3], 1);  // d3's path to fact goes through d1
  // Leaves-first: d3 must appear before d1, d1 before fact.
  auto pos = [&](int r) {
    for (size_t i = 0; i < dir.order.size(); ++i) {
      if (dir.order[i] == r) return static_cast<int>(i);
    }
    return -1;
  };
  EXPECT_LT(pos(3), pos(1));
  EXPECT_LT(pos(1), pos(0));
}

TEST(JoinGraphTest, SnowflakeFactDetection) {
  JoinGraph g = Snowflake();
  g.relation(0).num_rows = 1000;
  g.relation(1).num_rows = 10;
  g.relation(2).num_rows = 10;
  g.relation(3).num_rows = 5;
  EXPECT_TRUE(g.IsSnowflakeFact(0));
  EXPECT_FALSE(g.IsSnowflakeFact(1));

  std::vector<int> facts;
  std::vector<int> clusters = g.ComputeClusters(&facts);
  EXPECT_EQ(facts.size(), 1u);
  EXPECT_EQ(facts[0], 0);
  for (int c : clusters) EXPECT_EQ(c, 0);
}

TEST(JoinGraphTest, GalaxyClusters) {
  // Two facts sharing a dimension: fact1 - dim - fact2.
  JoinGraph g;
  g.AddRelation("fact1", {}, "y");
  g.AddRelation("dim", {});
  g.AddRelation("fact2", {});
  int e0 = g.AddEdge("fact1", "dim", {"k"});
  int e1 = g.AddEdge("dim", "fact2", {"k2"});
  g.edge(e0).unique_b = true;   // dim unique toward fact1
  g.edge(e1).unique_a = true;   // dim unique toward fact2
  g.relation(0).num_rows = 1000;
  g.relation(1).num_rows = 10;
  g.relation(2).num_rows = 900;

  std::vector<int> facts;
  std::vector<int> clusters = g.ComputeClusters(&facts);
  EXPECT_EQ(facts.size(), 2u);
  EXPECT_EQ(clusters[0], clusters[1]);  // dim joins the bigger fact first
  EXPECT_NE(clusters[0], clusters[2]);
}

TEST(JoinGraphTest, FeatureLookupAndValidation) {
  JoinGraph g = Snowflake();
  EXPECT_EQ(g.RelationOfFeature("f2"), 2);
  EXPECT_EQ(g.RelationOfFeature("zzz"), -1);
  EXPECT_EQ(g.YRelation(), 0);
  EXPECT_EQ(g.AllFeatures().size(), 4u);
  EXPECT_THROW(g.AddRelation("fact"), JbError);          // duplicate
  EXPECT_THROW(g.AddEdge("fact", "nope", {"k"}), JbError);
  EXPECT_THROW(g.AddEdge("fact", "d1", {}), JbError);    // no keys
}

}  // namespace
}  // namespace graph
}  // namespace joinboost
