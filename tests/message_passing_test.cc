#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluate.h"
#include "core/session.h"
#include "factor/message_passing.h"
#include "joinboost.h"
#include "util/rng.h"

namespace joinboost {
namespace {

/// Random acyclic join graph: a chain or star of `k` relations with random
/// (possibly duplicated) keys so join multiplicities exceed 1, Y on relation
/// 0. This is the general (non-snowflake) message-passing stress case.
struct RandomGraph {
  std::unique_ptr<exec::Database> db;
  std::unique_ptr<Dataset> ds;
};

RandomGraph MakeRandomGraph(uint64_t seed, bool chain) {
  RandomGraph out;
  out.db = std::make_unique<exec::Database>();
  Rng rng(seed);
  const int k = 4;
  std::vector<std::string> names;
  for (int r = 0; r < k; ++r) {
    std::string name = "rel" + std::to_string(r);
    size_t rows = 20 + rng.NextBounded(30);
    std::vector<int64_t> key(rows), key2(rows);
    std::vector<double> feat(rows), y(rows);
    for (size_t i = 0; i < rows; ++i) {
      key[i] = rng.NextInt(0, 5);   // duplicates => multiplicities
      key2[i] = rng.NextInt(0, 5);
      feat[i] = static_cast<double>(rng.NextInt(1, 50));
      y[i] = rng.NextGaussian() * 3;
    }
    TableBuilder builder(name);
    builder.AddInts("k" + std::to_string(r), key);
    if (r + 1 < k) builder.AddInts("k" + std::to_string(r + 1), key2);
    builder.AddDoubles("f" + std::to_string(r), feat);
    if (r == 0) builder.AddDoubles("y", y);
    out.db->RegisterTable(builder.Build());
    names.push_back(name);
  }
  out.ds = std::make_unique<Dataset>(out.db.get());
  for (int r = 0; r < k; ++r) {
    out.ds->AddTable(names[static_cast<size_t>(r)],
                     {"f" + std::to_string(r)}, r == 0 ? "y" : "");
  }
  if (chain) {
    // rel0 -k1- rel1 -k2- rel2 -k3- rel3
    for (int r = 0; r + 1 < k; ++r) {
      out.ds->AddJoin(names[static_cast<size_t>(r)],
                      names[static_cast<size_t>(r + 1)],
                      {"k" + std::to_string(r + 1)});
    }
  } else {
    // star around rel0? rel0 only has k0,k1 — use chain edges shuffled is
    // equivalent; keep chain topology but pick a middle root later.
    for (int r = 0; r + 1 < k; ++r) {
      out.ds->AddJoin(names[static_cast<size_t>(r)],
                      names[static_cast<size_t>(r + 1)],
                      {"k" + std::to_string(r + 1)});
    }
  }
  return out;
}

class MessagePassingPropertyTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(MessagePassingPropertyTest, FactorizedEqualsMaterializedAggregates) {
  RandomGraph g = MakeRandomGraph(GetParam(), true);
  core::TrainParams params;
  params.boosting = "dt";
  params.track_q = true;
  core::Session session(g.ds.get(), params);
  session.Prepare();

  // Every relation works as a message-passing root (paper §3.1: any relation
  // containing the grouping attribute can be the root).
  core::JoinedEval eval = core::MaterializeJoin(*g.ds);
  double c = static_cast<double>(eval.rows());
  double s = 0, q = 0;
  for (size_t i = 0; i < eval.rows(); ++i) {
    s += eval.YValue(i);
    q += eval.YValue(i) * eval.YValue(i);
  }
  factor::PredicateSet none;
  for (size_t root = 0; root < g.ds->graph().num_relations(); ++root) {
    semiring::VarianceElem tot = session.fac().TotalAggregate(
        static_cast<int>(root), none, "test");
    EXPECT_NEAR(tot.c, c, 1e-6 * std::max(1.0, c)) << "root " << root;
    EXPECT_NEAR(tot.s, s, 1e-6 * std::max(1.0, std::fabs(s)))
        << "root " << root;
    EXPECT_NEAR(tot.q, q, 1e-6 * std::max(1.0, std::fabs(q)))
        << "root " << root;
  }
}

TEST_P(MessagePassingPropertyTest, PredicatesMatchMaterializedFilter) {
  RandomGraph g = MakeRandomGraph(GetParam() ^ 0xABC, true);
  core::TrainParams params;
  params.boosting = "dt";
  core::Session session(g.ds.get(), params);
  session.Prepare();

  // Predicate on a non-root relation: γ(σ_{f2<=25}(R⋈)).
  factor::PredicateSet preds;
  preds.Add(2, "f2 <= 25");
  semiring::VarianceElem tot =
      session.fac().TotalAggregate(session.y_fact(), preds, "test");

  core::JoinedEval eval = core::MaterializeJoin(*g.ds);
  int f2_idx = eval.table().Find("", "f2");
  ASSERT_GE(f2_idx, 0);
  double c = 0, s = 0;
  for (size_t i = 0; i < eval.rows(); ++i) {
    double f2 =
        eval.table().cols[static_cast<size_t>(f2_idx)].data.GetValue(i)
            .AsDouble();
    if (f2 <= 25) {
      c += 1;
      s += eval.YValue(i);
    }
  }
  EXPECT_NEAR(tot.c, c, 1e-6 * std::max(1.0, c));
  EXPECT_NEAR(tot.s, s, 1e-6 * std::max(1.0, std::fabs(s)));
}

TEST_P(MessagePassingPropertyTest, CacheHitsOnRepeatedRequests) {
  RandomGraph g = MakeRandomGraph(GetParam() ^ 0x123, true);
  core::TrainParams params;
  params.boosting = "dt";
  core::Session session(g.ds.get(), params);
  session.Prepare();

  factor::PredicateSet none;
  session.fac().TotalAggregate(0, none, "test");
  size_t misses_before = session.fac().cache_misses();
  session.fac().TotalAggregate(0, none, "test");
  EXPECT_EQ(session.fac().cache_misses(), misses_before);
  EXPECT_GT(session.fac().cache_hits(), 0u);

  // A predicate on relation 3 only affects messages whose subtree covers
  // rel 3: aggregating at root 3 reuses every message flowing 0->1->2->3
  // (this is exactly the parent/child sharing of §5.5.1, Figure 6).
  session.fac().TotalAggregate(3, none, "test");  // warm the 0->..->3 chain
  factor::PredicateSet preds;
  preds.Add(3, "f3 <= 25");
  size_t hits_before = session.fac().cache_hits();
  size_t misses2 = session.fac().cache_misses();
  session.fac().TotalAggregate(3, preds, "test");
  EXPECT_GT(session.fac().cache_hits(), hits_before);
  EXPECT_EQ(session.fac().cache_misses(), misses2);  // all messages reused
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessagePassingPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55));

TEST(MessagePassingTest, EpochBumpInvalidatesMessages) {
  exec::Database db;
  db.RegisterTable(TableBuilder("fact")
                       .AddInts("k", {1, 1, 2})
                       .AddDoubles("y", {1.0, 2.0, 3.0})
                       .Build());
  db.RegisterTable(
      TableBuilder("dim").AddInts("k", {1, 2}).AddDoubles("f", {5, 6}).Build());
  Dataset ds(&db);
  ds.AddTable("fact", {}, "y");
  ds.AddTable("dim", {"f"});
  ds.AddJoin("fact", "dim", {"k"});

  core::TrainParams params;
  params.boosting = "dt";
  core::Session session(&ds, params);
  session.Prepare();

  factor::PredicateSet none;
  semiring::VarianceElem before =
      session.fac().TotalAggregate(1, none, "test");
  EXPECT_NEAR(before.s, 6.0, 1e-9);

  // Mutate the lifted fact annotations; without an epoch bump the cached
  // message toward dim would serve stale data.
  db.Execute("UPDATE " + session.FactTable(session.y_fact()) +
             " SET s = s + 1.0");
  session.fac().BumpEpoch(session.y_fact());
  semiring::VarianceElem after = session.fac().TotalAggregate(1, none, "test");
  EXPECT_NEAR(after.s, 9.0, 1e-9);
}

TEST(MessagePassingTest, IdentityMessageDropped) {
  // Unpredicated unique-key complete dimension: the message is elided
  // entirely (Appendix D.2).
  exec::Database db;
  db.RegisterTable(TableBuilder("fact")
                       .AddInts("k", {1, 1, 2})
                       .AddDoubles("y", {1.0, 2.0, 3.0})
                       .Build());
  db.RegisterTable(
      TableBuilder("dim").AddInts("k", {1, 2}).AddDoubles("f", {5, 6}).Build());
  Dataset ds(&db);
  ds.AddTable("fact", {}, "y");
  ds.AddTable("dim", {"f"});
  ds.AddJoin("fact", "dim", {"k"});
  core::TrainParams params;
  params.boosting = "dt";
  core::Session session(&ds, params);
  session.Prepare();

  factor::PredicateSet none;
  factor::Message m = session.fac().GetMessage(1, 0, none, "test");
  EXPECT_EQ(m.kind, factor::Message::Kind::kNone);

  // With a predicate it becomes a semi-join selection message.
  factor::PredicateSet preds;
  preds.Add(1, "f <= 5");
  factor::Message sel = session.fac().GetMessage(1, 0, preds, "test");
  EXPECT_EQ(sel.kind, factor::Message::Kind::kSelection);
}

TEST(MessagePassingTest, MissingKeysForceFullMessage) {
  // dim lacks k=2: dropping its message would over-count; a full message
  // (or selection) must be produced instead.
  exec::Database db;
  db.RegisterTable(TableBuilder("fact")
                       .AddInts("k", {1, 1, 2})
                       .AddDoubles("y", {1.0, 2.0, 3.0})
                       .Build());
  db.RegisterTable(
      TableBuilder("dim").AddInts("k", {1}).AddDoubles("f", {5}).Build());
  Dataset ds(&db);
  ds.AddTable("fact", {}, "y");
  ds.AddTable("dim", {"f"});
  ds.AddJoin("fact", "dim", {"k"});
  core::TrainParams params;
  params.boosting = "dt";
  core::Session session(&ds, params);
  session.Prepare();

  factor::PredicateSet none;
  factor::Message m = session.fac().GetMessage(1, 0, none, "test");
  EXPECT_NE(m.kind, factor::Message::Kind::kNone);

  semiring::VarianceElem tot =
      session.fac().TotalAggregate(session.y_fact(), none, "test");
  EXPECT_NEAR(tot.c, 2.0, 1e-9);  // the k=2 fact row does not join
  EXPECT_NEAR(tot.s, 3.0, 1e-9);
}

}  // namespace
}  // namespace joinboost
