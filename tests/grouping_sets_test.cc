// GROUP BY GROUPING SETS + the multi-aggregate operator (PR 4): SQL-level
// semantics, parse/print round trips, differential equivalence against the
// per-set GROUP BY path, thread-count determinism, and EXPLAIN coverage.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/engine.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "storage/table.h"

namespace joinboost {
namespace {

using exec::Database;
using exec::ExecTable;

class GroupingSetsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(EngineProfile::DSwap());
    db_->RegisterTable(TableBuilder("f")
                           .AddInts("a", {1, 1, 2, 2, 3, 3, 3})
                           .AddDoubles("x", {0.5, 1.5, 2.5, 2.5, 0.5, 4.0, 4.0})
                           .AddStrings("g", {"u", "v", "u", "u", "v", "v", "u"})
                           .AddDoubles("w", {1, 2, 3, 4, 5, 6, 7})
                           .Build());
  }
  std::unique_ptr<Database> db_;
};

TEST_F(GroupingSetsTest, ParsePrintFixedPoint) {
  const std::string q =
      "SELECT GROUPING_ID() AS sid, a, x, SUM(w) AS s FROM f "
      "GROUP BY GROUPING SETS ((a), (x), ())";
  sql::Statement stmt = sql::Parse(q);
  ASSERT_EQ(stmt.select->grouping_sets.size(), 3u);
  EXPECT_EQ(stmt.select->grouping_sets[0].size(), 1u);
  EXPECT_TRUE(stmt.select->grouping_sets[2].empty());
  std::string printed = sql::ToSql(stmt);
  // Printing must reach a fixed point after one round trip.
  EXPECT_EQ(printed, sql::ToSql(sql::Parse(printed)));
}

TEST_F(GroupingSetsTest, RowsConcatenateInSetOrder) {
  auto res = db_->Query(
      "SELECT GROUPING_ID() AS sid, a, x, SUM(w) AS s, COUNT(*) AS c FROM f "
      "GROUP BY GROUPING SETS ((a), (x))");
  // Set 0: a in {1,2,3}; set 1: x in {0.5, 1.5, 2.5, 4.0}.
  ASSERT_EQ(res->rows, 7u);
  for (size_t r = 0; r < 3; ++r) EXPECT_EQ(res->GetValue(r, 0).i, 0);
  for (size_t r = 3; r < 7; ++r) EXPECT_EQ(res->GetValue(r, 0).i, 1);
  // Set 0 rows: a is present, x is NULL-extended.
  EXPECT_EQ(res->GetValue(0, 1).i, 1);
  EXPECT_TRUE(res->GetValue(0, 2).null);
  EXPECT_DOUBLE_EQ(res->GetValue(0, 3).d, 3.0);  // w: 1+2
  // Set 1 rows: x present, a NULL-extended; first-occurrence order.
  EXPECT_TRUE(res->GetValue(3, 1).null);
  EXPECT_DOUBLE_EQ(res->GetValue(3, 2).d, 0.5);
  EXPECT_DOUBLE_EQ(res->GetValue(3, 3).d, 6.0);  // w at x=0.5: 1+5
  EXPECT_EQ(res->GetValue(6, 4).i, 2u);          // x=4.0 count
}

TEST_F(GroupingSetsTest, EmptySetIsGrandTotal) {
  auto res = db_->Query(
      "SELECT GROUPING_ID() AS sid, a, SUM(w) AS s FROM f "
      "GROUP BY GROUPING SETS ((a), ())");
  ASSERT_EQ(res->rows, 4u);
  EXPECT_EQ(res->GetValue(3, 0).i, 1);
  EXPECT_TRUE(res->GetValue(3, 1).null);
  EXPECT_DOUBLE_EQ(res->GetValue(3, 2).d, 28.0);
}

TEST_F(GroupingSetsTest, StringKeysKeepDictionary) {
  auto res = db_->Query(
      "SELECT GROUPING_ID() AS sid, g, SUM(w) AS s FROM f "
      "GROUP BY GROUPING SETS ((g), ())");
  ASSERT_EQ(res->rows, 3u);
  EXPECT_EQ(res->GetValue(0, 1).s, "u");
  EXPECT_DOUBLE_EQ(res->GetValue(0, 2).d, 15.0);  // u: 1+3+4+7
  EXPECT_EQ(res->GetValue(1, 1).s, "v");
  EXPECT_TRUE(res->GetValue(2, 1).null);
}

/// Every grouping set must match the standalone GROUP BY on the same key,
/// bit-for-bit (same groups, same order, same float sums).
TEST_F(GroupingSetsTest, SetsMatchStandaloneGroupBy) {
  auto multi = db_->Query(
      "SELECT GROUPING_ID() AS sid, a, x, SUM(w) AS s FROM f "
      "GROUP BY GROUPING SETS ((a), (x))");
  auto by_a = db_->Query("SELECT a, SUM(w) AS s FROM f GROUP BY a");
  auto by_x = db_->Query("SELECT x, SUM(w) AS s FROM f GROUP BY x");
  ASSERT_EQ(multi->rows, by_a->rows + by_x->rows);
  for (size_t r = 0; r < by_a->rows; ++r) {
    EXPECT_EQ(multi->GetValue(r, 1).i, by_a->GetValue(r, 0).i);
    EXPECT_EQ(multi->GetValue(r, 3).d, by_a->GetValue(r, 1).d);
  }
  for (size_t r = 0; r < by_x->rows; ++r) {
    EXPECT_EQ(multi->GetValue(by_a->rows + r, 2).d, by_x->GetValue(r, 0).d);
    EXPECT_EQ(multi->GetValue(by_a->rows + r, 3).d, by_x->GetValue(r, 1).d);
  }
}

TEST_F(GroupingSetsTest, PlannerOnOffIdentical) {
  const std::string q =
      "SELECT GROUPING_ID() AS sid, a, x, SUM(w) AS s, COUNT(*) AS c FROM f "
      "GROUP BY GROUPING SETS ((a), (x), ())";
  auto on = db_->Query(q);
  EngineProfile off_profile = EngineProfile::DSwap();
  off_profile.use_planner = false;
  Database off_db(off_profile);
  off_db.RegisterTable(db_->catalog().Get("f"));
  auto off = off_db.Query(q);
  ASSERT_EQ(on->rows, off->rows);
  ASSERT_EQ(on->cols.size(), off->cols.size());
  for (size_t r = 0; r < on->rows; ++r) {
    for (size_t c = 0; c < on->cols.size(); ++c) {
      EXPECT_TRUE(on->GetValue(r, c) == off->GetValue(r, c))
          << "row " << r << " col " << c;
    }
  }
}

/// The multi-aggregate reuses the partitioned-aggregation machinery, so a
/// large input must produce bit-identical results for 1 and N threads.
TEST_F(GroupingSetsTest, ThreadCountDeterminism) {
  const size_t n = 40000;  // over the 8192-row parallel threshold
  std::vector<int64_t> a(n);
  std::vector<double> x(n), w(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int64_t>((i * 2654435761u) % 97);
    x[i] = static_cast<double>((i * 40503u) % 31) / 7.0;
    w[i] = static_cast<double>(i % 1000) / 3.0;
  }
  const std::string q =
      "SELECT GROUPING_ID() AS sid, a, x, SUM(w) AS s, COUNT(*) AS c "
      "FROM big GROUP BY GROUPING SETS ((a), (x), ())";
  std::vector<ExecTable> results;
  for (int threads : {1, 4}) {
    EngineProfile profile = EngineProfile::DSwap();
    profile.exec_threads = threads;
    Database db(profile);
    db.RegisterTable(TableBuilder("big")
                         .AddInts("a", a)
                         .AddDoubles("x", x)
                         .AddDoubles("w", w)
                         .Build());
    results.push_back(*db.Query(q));
  }
  ASSERT_EQ(results[0].rows, results[1].rows);
  for (size_t r = 0; r < results[0].rows; ++r) {
    for (size_t c = 0; c < results[0].cols.size(); ++c) {
      Value v1 = results[0].GetValue(r, c);
      Value v4 = results[1].GetValue(r, c);
      if (v1.null || v4.null) {
        EXPECT_EQ(v1.null, v4.null);
        continue;
      }
      if (v1.type == TypeId::kFloat64) {
        EXPECT_EQ(v1.d, v4.d) << "row " << r << " col " << c;  // bit-exact
      } else {
        EXPECT_EQ(v1.i, v4.i) << "row " << r << " col " << c;
      }
    }
  }
}

TEST_F(GroupingSetsTest, ExplainShowsMultiAggregate) {
  auto res = db_->Query(
      "EXPLAIN SELECT a, x, SUM(w) AS s FROM f "
      "GROUP BY GROUPING SETS ((a), (x))");
  std::string text;
  for (size_t r = 0; r < res->rows; ++r) {
    text += res->GetValue(r, 0).s;
    text += "\n";
  }
  EXPECT_NE(text.find("MultiAggregate sets=[(a), (x)]"), std::string::npos)
      << text;
}

TEST_F(GroupingSetsTest, PlanStatsCountSets) {
  db_->ClearPlanStats();
  db_->Query(
      "SELECT a, x, SUM(w) AS s FROM f GROUP BY GROUPING SETS ((a), (x))");
  plan::PlanStats stats = db_->PlanStatsTotals();
  EXPECT_EQ(stats.multi_aggs, 1u);
  EXPECT_EQ(stats.grouping_sets, 2u);
}

TEST_F(GroupingSetsTest, HavingIsRejected) {
  EXPECT_THROW(db_->Query("SELECT a, SUM(w) AS s FROM f "
                          "GROUP BY GROUPING SETS ((a)) HAVING SUM(w) > 3"),
               std::exception);
}

}  // namespace
}  // namespace joinboost
