#include "util/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

namespace joinboost {
namespace {

TEST(ThreadPoolTest, ParallelForRunsEveryItemExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  ThreadPool::ParallelForStats stats =
      pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(stats.items, 1000u);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPoolTest, ParallelForPropagatesTaskExceptionToCaller) {
  ThreadPool pool(4);
  // Whatever the interleaving, the exception of the smallest failing index
  // must surface in the calling thread.
  EXPECT_THROW(
      {
        pool.ParallelFor(256, [&](size_t i) {
          if (i % 5 == 0) throw std::runtime_error("item " + std::to_string(i));
        });
      },
      std::runtime_error);
  try {
    pool.ParallelFor(256, [&](size_t i) {
      if (i >= 7) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    // Smallest *thrown* index wins; an index below 7 can never throw, and
    // once a failure is recorded remaining items are skipped, so the
    // surfaced index stays close to the trigger.
    EXPECT_GE(std::stoul(e.what()), 7u);
  }
  // The pool must stay usable after a failed loop.
  std::atomic<int> ran{0};
  pool.ParallelFor(64, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ParallelForExceptionOnSingleWorkerPool) {
  ThreadPool pool(1);  // serial fallback path
  EXPECT_THROW(
      pool.ParallelFor(8, [](size_t i) {
        if (i == 3) throw std::logic_error("boom");
      }),
      std::logic_error);
}

TEST(ThreadPoolTest, SubmitExceptionSurfacesInWaitIdle) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("background failure"); });
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);
  // The error is consumed: the next wait succeeds and workers survived.
  pool.WaitIdle();
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) pool.Submit([&] { ran.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, NestedParallelForFromWorkersDoesNotDeadlock) {
  // Every worker is busy with an outer item that itself fans out on the same
  // pool; caller-runs dispatch must drain the inner loops regardless.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(32, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 32);
}

TEST(ThreadPoolTest, SubmitFromInsideWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.Submit([&] { ran.fetch_add(1); });
  });
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPoolTest, WaitIdleFromWorkerThrowsInsteadOfDeadlocking) {
  ThreadPool pool(2);
  std::atomic<bool> threw{false};
  pool.Submit([&] {
    try {
      pool.WaitIdle();
    } catch (const std::logic_error&) {
      threw.store(true);
    }
  });
  pool.WaitIdle();
  EXPECT_TRUE(threw.load());
}

TEST(ThreadPoolTest, NestedParallelForExceptionPropagatesThroughBothLevels) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(4, [&](size_t) {
        pool.ParallelFor(16, [](size_t j) {
          if (j == 5) throw std::runtime_error("inner");
        });
      }),
      std::runtime_error);
}

}  // namespace
}  // namespace joinboost
