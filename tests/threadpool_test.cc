#include "util/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/error.h"
#include "util/query_guard.h"

namespace joinboost {
namespace {

TEST(ThreadPoolTest, ParallelForRunsEveryItemExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  ThreadPool::ParallelForStats stats =
      pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(stats.items, 1000u);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "item " << i;
  }
}

TEST(ThreadPoolTest, ParallelForPropagatesTaskExceptionToCaller) {
  ThreadPool pool(4);
  // Whatever the interleaving, the exception of the smallest failing index
  // must surface in the calling thread.
  EXPECT_THROW(
      {
        pool.ParallelFor(256, [&](size_t i) {
          if (i % 5 == 0) throw std::runtime_error("item " + std::to_string(i));
        });
      },
      std::runtime_error);
  try {
    pool.ParallelFor(256, [&](size_t i) {
      if (i >= 7) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    // Smallest *thrown* index wins; an index below 7 can never throw, and
    // once a failure is recorded remaining items are skipped, so the
    // surfaced index stays close to the trigger.
    EXPECT_GE(std::stoul(e.what()), 7u);
  }
  // The pool must stay usable after a failed loop.
  std::atomic<int> ran{0};
  pool.ParallelFor(64, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPoolTest, ParallelForExceptionOnSingleWorkerPool) {
  ThreadPool pool(1);  // serial fallback path
  EXPECT_THROW(
      pool.ParallelFor(8, [](size_t i) {
        if (i == 3) throw std::logic_error("boom");
      }),
      std::logic_error);
}

TEST(ThreadPoolTest, SubmitExceptionSurfacesInWaitIdle) {
  ThreadPool pool(2);
  pool.Submit([] { throw std::runtime_error("background failure"); });
  EXPECT_THROW(pool.WaitIdle(), std::runtime_error);
  // The error is consumed: the next wait succeeds and workers survived.
  pool.WaitIdle();
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) pool.Submit([&] { ran.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolTest, NestedParallelForFromWorkersDoesNotDeadlock) {
  // Every worker is busy with an outer item that itself fans out on the same
  // pool; caller-runs dispatch must drain the inner loops regardless.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, [&](size_t) {
    pool.ParallelFor(32, [&](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 32);
}

TEST(ThreadPoolTest, SubmitFromInsideWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.ParallelFor(4, [&](size_t) {
    pool.Submit([&] { ran.fetch_add(1); });
  });
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPoolTest, WaitIdleFromWorkerThrowsInsteadOfDeadlocking) {
  ThreadPool pool(2);
  std::atomic<bool> threw{false};
  pool.Submit([&] {
    try {
      pool.WaitIdle();
    } catch (const std::logic_error&) {
      threw.store(true);
    }
  });
  pool.WaitIdle();
  EXPECT_TRUE(threw.load());
}

TEST(ThreadPoolTest, NestedParallelForExceptionPropagatesThroughBothLevels) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.ParallelFor(4, [&](size_t) {
        pool.ParallelFor(16, [](size_t j) {
          if (j == 5) throw std::runtime_error("inner");
        });
      }),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// Cancellation stress: a tripped QueryGuard inside pool tasks must surface as
// the typed QueryAborted in the dispatching thread, through nesting, and the
// pool must stay fully usable — WaitIdle never deadlocks on an abort.
// ---------------------------------------------------------------------------

TEST(ThreadPoolCancellationTest, TrippedGuardSurfacesTypedFromParallelFor) {
  ThreadPool pool(4);
  util::QueryGuard guard;
  guard.Cancel();
  try {
    pool.ParallelFor(512, [&](size_t) { guard.Check(); });
    FAIL() << "expected QueryAborted";
  } catch (const QueryAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kCancelled);
  }
  // Pool reusable: a clean loop right after runs every item.
  std::atomic<int> ran{0};
  pool.ParallelFor(128, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 128);
}

TEST(ThreadPoolCancellationTest, GuardTrippedMidLoopAbortsRemainingItems) {
  ThreadPool pool(4);
  util::QueryGuard guard;
  std::atomic<int> executed{0};
  try {
    pool.ParallelFor(4096, [&](size_t i) {
      guard.Check();
      if (i == 64) guard.Cancel();  // trip from inside a worker
      executed.fetch_add(1);
    });
    FAIL() << "expected QueryAborted";
  } catch (const QueryAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kCancelled);
  }
  // Cooperative, not preemptive: some items ran, but the abort cut the loop
  // well short of draining all 4096 items.
  EXPECT_GT(executed.load(), 0);
  EXPECT_LT(executed.load(), 4096);
}

TEST(ThreadPoolCancellationTest, NestedParallelForWithTrippedGuard) {
  // Outer items fan out inner loops on the same pool while the guard trips
  // concurrently; the typed abort must unwind through both levels without
  // deadlocking caller-runs dispatch.
  ThreadPool pool(2);
  util::QueryGuard guard;
  try {
    pool.ParallelFor(8, [&](size_t i) {
      pool.ParallelFor(64, [&](size_t j) {
        if (i == 0 && j == 16) guard.Cancel();
        guard.Check();
      });
    });
    FAIL() << "expected QueryAborted";
  } catch (const QueryAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kCancelled);
  }
  std::atomic<int> ran{0};
  pool.ParallelFor(32, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPoolCancellationTest, RacingErrorAndAbortSurfaceExactlyOne) {
  // A task exception and a guard abort racing across workers: exactly one
  // error surfaces (whichever recorded the smaller thrown index), it is one
  // of the two thrown types — never a mangled or swallowed error — and the
  // pool survives. Repeated to shake out interleavings.
  ThreadPool pool(4);
  for (int round = 0; round < 16; ++round) {
    util::QueryGuard guard;
    bool caught = false;
    try {
      pool.ParallelFor(2048, [&](size_t i) {
        if (i == 0) throw std::runtime_error("real failure");
        if (i == 100) guard.Cancel();
        guard.Check();
      });
    } catch (const QueryAborted& e) {  // JbError derives std::runtime_error:
      caught = true;                   // the typed catch must come first
      EXPECT_EQ(e.reason(), AbortReason::kCancelled);
    } catch (const std::runtime_error& e) {
      caught = true;
      EXPECT_STREQ(e.what(), "real failure");
    }
    EXPECT_TRUE(caught) << "round " << round;
    std::atomic<int> ran{0};
    pool.ParallelFor(64, [&](size_t) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 64) << "round " << round;
  }
}

TEST(ThreadPoolCancellationTest, SerialDispatchErrorBeatsLaterCancel) {
  // On a single-worker pool dispatch is in index order, so the item-0 task
  // error deterministically beats a cancel tripped at a later index.
  ThreadPool pool(1);
  util::QueryGuard guard;
  try {
    pool.ParallelFor(64, [&](size_t i) {
      if (i == 0) throw std::runtime_error("real failure");
      if (i == 5) guard.Cancel();
      guard.Check();
    });
    FAIL() << "expected the task error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "real failure");
  }
}

TEST(ThreadPoolCancellationTest, ConcurrentAbortsAcrossSubmitsNeverDeadlock) {
  // Hammer Submit with tasks that throw QueryAborted while others run clean;
  // WaitIdle must always return (consuming one pending error per call) and
  // the pool must keep scheduling.
  ThreadPool pool(3);
  util::QueryGuard guard;
  guard.Cancel();
  for (int round = 0; round < 8; ++round) {
    std::atomic<int> clean{0};
    for (int i = 0; i < 16; ++i) {
      if (i % 4 == 0) {
        pool.Submit([&] { guard.Check(); });
      } else {
        pool.Submit([&] { clean.fetch_add(1); });
      }
    }
    // 4 aborted tasks per round: drain every pending error, then confirm
    // the clean tasks all ran.
    int aborted = 0;
    for (int drains = 0; drains < 8; ++drains) {
      try {
        pool.WaitIdle();
        break;
      } catch (const QueryAborted&) {
        ++aborted;
      }
    }
    pool.WaitIdle();  // no error left: must return cleanly
    EXPECT_EQ(clean.load(), 12) << "round " << round;
    EXPECT_GT(aborted, 0) << "round " << round;
  }
}

TEST(ThreadPoolCancellationTest, SerialFallbackHonoursGuardAbort) {
  ThreadPool pool(1);  // serial dispatch path
  util::QueryGuard guard;
  std::atomic<int> executed{0};
  try {
    pool.ParallelFor(64, [&](size_t i) {
      if (i == 5) guard.Cancel();
      guard.Check();
      executed.fetch_add(1);
    });
    FAIL() << "expected QueryAborted";
  } catch (const QueryAborted& e) {
    EXPECT_EQ(e.reason(), AbortReason::kCancelled);
  }
  // Items 0..4 completed; item 5 cancelled and then failed its own check.
  EXPECT_EQ(executed.load(), 5);
}

}  // namespace
}  // namespace joinboost
