#include <gtest/gtest.h>

#include <cmath>

#include "joinboost.h"
#include "util/rng.h"

namespace joinboost {
namespace {

/// Build a small snowflake: fact(k1, k2, x0, y) ⋈ d1(k1, f1) ⋈ d2(k2, f2).
void BuildSmallSnowflake(exec::Database* db, uint64_t seed, size_t rows) {
  Rng rng(seed);
  const int64_t kD1 = 17, kD2 = 11;
  std::vector<int64_t> k1(rows), k2(rows);
  std::vector<double> x0(rows), y(rows);
  std::vector<int64_t> d1k(static_cast<size_t>(kD1)),
      d2k(static_cast<size_t>(kD2));
  std::vector<double> f1(static_cast<size_t>(kD1)),
      f2(static_cast<size_t>(kD2));
  for (int64_t i = 0; i < kD1; ++i) {
    d1k[static_cast<size_t>(i)] = i;
    f1[static_cast<size_t>(i)] = static_cast<double>(rng.NextInt(1, 1000));
  }
  for (int64_t i = 0; i < kD2; ++i) {
    d2k[static_cast<size_t>(i)] = i;
    f2[static_cast<size_t>(i)] = static_cast<double>(rng.NextInt(1, 1000));
  }
  for (size_t i = 0; i < rows; ++i) {
    k1[i] = rng.NextInt(0, kD1 - 1);
    k2[i] = rng.NextInt(0, kD2 - 1);
    x0[i] = rng.NextDouble() * 10;
    y[i] = 3.0 * x0[i] + 0.01 * f1[static_cast<size_t>(k1[i])] -
           0.02 * f2[static_cast<size_t>(k2[i])] + rng.NextGaussian();
  }
  db->RegisterTable(TableBuilder("fact")
                        .AddInts("k1", k1)
                        .AddInts("k2", k2)
                        .AddDoubles("x0", x0)
                        .AddDoubles("y", y)
                        .Build());
  db->RegisterTable(
      TableBuilder("d1").AddInts("k1", d1k).AddDoubles("f1", f1).Build());
  db->RegisterTable(
      TableBuilder("d2").AddInts("k2", d2k).AddDoubles("f2", f2).Build());
}

Dataset MakeDataset(exec::Database* db) {
  Dataset ds(db);
  ds.AddTable("fact", {"x0"}, "y");
  ds.AddTable("d1", {"f1"});
  ds.AddTable("d2", {"f2"});
  ds.AddJoin("fact", "d1", {"k1"});
  ds.AddJoin("fact", "d2", {"k2"});
  return ds;
}

class TrainEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrainEquivalenceTest, FactorizedDecisionTreeEqualsNaive) {
  exec::Database db(EngineProfile::DSwap());
  BuildSmallSnowflake(&db, GetParam(), 400);
  Dataset ds = MakeDataset(&db);

  core::TrainParams params;
  params.boosting = "dt";
  params.num_leaves = 8;

  params.variant = "factorized";
  TrainResult fact = Train(params, ds);

  Dataset ds2 = MakeDataset(&db);
  params.variant = "naive";
  TrainResult naive = Train(params, ds2);

  // Identical greedy algorithm on identical data => identical trees.
  ASSERT_EQ(fact.model.trees.size(), 1u);
  ASSERT_EQ(naive.model.trees.size(), 1u);
  const auto& ft = fact.model.trees[0];
  const auto& nt = naive.model.trees[0];
  ASSERT_EQ(ft.nodes.size(), nt.nodes.size());
  for (size_t i = 0; i < ft.nodes.size(); ++i) {
    EXPECT_EQ(ft.nodes[i].is_leaf, nt.nodes[i].is_leaf) << "node " << i;
    if (ft.nodes[i].is_leaf) {
      EXPECT_NEAR(ft.nodes[i].prediction, nt.nodes[i].prediction, 1e-6);
      EXPECT_NEAR(ft.nodes[i].count, nt.nodes[i].count, 1e-9);
    } else {
      EXPECT_EQ(ft.nodes[i].feature, nt.nodes[i].feature) << "node " << i;
      EXPECT_NEAR(ft.nodes[i].threshold, nt.nodes[i].threshold, 1e-9);
    }
  }
}

TEST_P(TrainEquivalenceTest, BatchVariantSameModelMoreQueries) {
  exec::Database db(EngineProfile::DSwap());
  BuildSmallSnowflake(&db, GetParam(), 300);

  core::TrainParams params;
  params.boosting = "dt";
  params.num_leaves = 8;

  Dataset ds1 = MakeDataset(&db);
  params.variant = "factorized";
  TrainResult fact = Train(params, ds1);

  Dataset ds2 = MakeDataset(&db);
  params.variant = "batch";
  TrainResult batch = Train(params, ds2);

  EXPECT_EQ(fact.model.trees[0].nodes.size(), batch.model.trees[0].nodes.size());
  // Message caching must strictly reduce materialized message work (§5.5.1).
  EXPECT_GT(fact.cache_hits, 0u);
  EXPECT_EQ(batch.cache_hits, 0u);
}

TEST_P(TrainEquivalenceTest, GbdtUpdateStrategiesAgree) {
  uint64_t seed = GetParam();
  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 5;
  params.num_leaves = 4;
  params.learning_rate = 0.3;

  std::vector<double> rmse;
  for (const char* strategy : {"swap", "create", "update", "naive_u"}) {
    exec::Database db(EngineProfile::DSwap());
    BuildSmallSnowflake(&db, seed, 300);
    Dataset ds = MakeDataset(&db);
    params.update_strategy = strategy;
    TrainResult res = Train(params, ds);
    core::JoinedEval eval = core::MaterializeJoin(ds);
    rmse.push_back(eval.Rmse(res.model));
  }
  for (size_t i = 1; i < rmse.size(); ++i) {
    EXPECT_NEAR(rmse[0], rmse[i], 1e-9) << "strategy index " << i;
  }
}

TEST_P(TrainEquivalenceTest, GbdtReducesRmseMonotonically) {
  exec::Database db(EngineProfile::DSwap());
  BuildSmallSnowflake(&db, GetParam(), 500);
  Dataset ds = MakeDataset(&db);

  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 10;
  params.num_leaves = 8;
  params.learning_rate = 0.3;
  TrainResult res = Train(params, ds);

  core::JoinedEval eval = core::MaterializeJoin(ds);
  std::vector<double> curve = eval.RmseCurve(res.model);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_LT(curve.back(), curve.front() * 0.8);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1] + 1e-9) << "iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrainEquivalenceTest,
                         ::testing::Values(1, 7, 42, 1234));

}  // namespace
}  // namespace joinboost
