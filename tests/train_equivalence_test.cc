#include <gtest/gtest.h>

#include <cmath>

#include "baselines/dense_dataset.h"
#include "baselines/histogram_gbdt.h"
#include "data/generators.h"
#include "joinboost.h"
#include "test_util.h"

namespace joinboost {
namespace {

using test_util::BuildSmallSnowflake;
using test_util::RelNear;

Dataset MakeDataset(exec::Database* db) {
  return test_util::MakeSnowflakeDataset(db);
}

class TrainEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrainEquivalenceTest, FactorizedDecisionTreeEqualsNaive) {
  exec::Database db(EngineProfile::DSwap());
  BuildSmallSnowflake(&db, GetParam(), 400);
  Dataset ds = MakeDataset(&db);

  core::TrainParams params;
  params.boosting = "dt";
  params.num_leaves = 8;

  params.variant = "factorized";
  TrainResult fact = Train(params, ds);

  Dataset ds2 = MakeDataset(&db);
  params.variant = "naive";
  TrainResult naive = Train(params, ds2);

  // Identical greedy algorithm on identical data => identical trees.
  ASSERT_EQ(fact.model.trees.size(), 1u);
  ASSERT_EQ(naive.model.trees.size(), 1u);
  const auto& ft = fact.model.trees[0];
  const auto& nt = naive.model.trees[0];
  ASSERT_EQ(ft.nodes.size(), nt.nodes.size());
  for (size_t i = 0; i < ft.nodes.size(); ++i) {
    EXPECT_EQ(ft.nodes[i].is_leaf, nt.nodes[i].is_leaf) << "node " << i;
    if (ft.nodes[i].is_leaf) {
      EXPECT_NEAR(ft.nodes[i].prediction, nt.nodes[i].prediction, 1e-6);
      EXPECT_NEAR(ft.nodes[i].count, nt.nodes[i].count, 1e-9);
    } else {
      EXPECT_EQ(ft.nodes[i].feature, nt.nodes[i].feature) << "node " << i;
      EXPECT_NEAR(ft.nodes[i].threshold, nt.nodes[i].threshold, 1e-9);
    }
  }
}

TEST_P(TrainEquivalenceTest, BatchVariantSameModelMoreQueries) {
  exec::Database db(EngineProfile::DSwap());
  BuildSmallSnowflake(&db, GetParam(), 300);

  core::TrainParams params;
  params.boosting = "dt";
  params.num_leaves = 8;

  Dataset ds1 = MakeDataset(&db);
  params.variant = "factorized";
  TrainResult fact = Train(params, ds1);

  Dataset ds2 = MakeDataset(&db);
  params.variant = "batch";
  TrainResult batch = Train(params, ds2);

  EXPECT_EQ(fact.model.trees[0].nodes.size(), batch.model.trees[0].nodes.size());
  // Message caching must strictly reduce materialized message work (§5.5.1).
  EXPECT_GT(fact.cache_hits, 0u);
  EXPECT_EQ(batch.cache_hits, 0u);
}

TEST_P(TrainEquivalenceTest, GbdtUpdateStrategiesAgree) {
  uint64_t seed = GetParam();
  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 5;
  params.num_leaves = 4;
  params.learning_rate = 0.3;

  std::vector<double> rmse;
  for (const char* strategy : {"swap", "create", "update", "naive_u"}) {
    exec::Database db(EngineProfile::DSwap());
    BuildSmallSnowflake(&db, seed, 300);
    Dataset ds = MakeDataset(&db);
    params.update_strategy = strategy;
    TrainResult res = Train(params, ds);
    core::JoinedEval eval = core::MaterializeJoin(ds);
    rmse.push_back(eval.Rmse(res.model));
  }
  for (size_t i = 1; i < rmse.size(); ++i) {
    EXPECT_NEAR(rmse[0], rmse[i], 1e-9) << "strategy index " << i;
  }
}

TEST_P(TrainEquivalenceTest, GbdtReducesRmseMonotonically) {
  exec::Database db(EngineProfile::DSwap());
  BuildSmallSnowflake(&db, GetParam(), 500);
  Dataset ds = MakeDataset(&db);

  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 10;
  params.num_leaves = 8;
  params.learning_rate = 0.3;
  TrainResult res = Train(params, ds);

  core::JoinedEval eval = core::MaterializeJoin(ds);
  std::vector<double> curve = eval.RmseCurve(res.model);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_LT(curve.back(), curve.front() * 0.8);
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1] + 1e-9) << "iteration " << i;
  }
}

TEST_P(TrainEquivalenceTest, HistogramBaselinePredictionsMatchFactorized) {
  // Differential test against the single-table comparator: the factorized
  // trainer over the normalized star schema and the histogram trainer over
  // the materialized join must produce the same per-row predictions when the
  // baseline runs in exact mode (bins cover all distinct values).
  exec::Database db(EngineProfile::DSwap());
  BuildSmallSnowflake(&db, GetParam(), 400);
  Dataset ds = MakeDataset(&db);

  core::TrainParams params;
  params.boosting = "gbdt";
  params.num_iterations = 5;
  params.num_leaves = 8;
  params.learning_rate = 0.3;
  TrainResult fact = Train(params, ds);

  baselines::ExportStats export_stats;
  baselines::DenseDataset dense =
      baselines::MaterializeExportLoad(ds, &export_stats);
  ASSERT_EQ(dense.num_rows, 400u);
  core::TrainParams exact = params;
  exact.max_bin = 1 << 20;
  baselines::HistogramGbdt trainer(exact);
  core::Ensemble baseline = trainer.Train(dense);

  ASSERT_EQ(fact.model.trees.size(), baseline.trees.size());
  core::JoinedEval eval = core::MaterializeJoin(ds);
  ASSERT_EQ(eval.rows(), 400u);
  for (size_t row = 0; row < eval.rows(); ++row) {
    EXPECT_TRUE(RelNear(eval.Predict(fact.model, row),
                        eval.Predict(baseline, row), 1e-6))
        << "row " << row;
  }
}

// Compressed execution must not change a bit of a full gbdt train on the
// Favorita snowflake: per-iteration split choices (the model string encodes
// every feature/threshold) and per-row predictions are compared exactly
// between cexec ON and OFF, across thread counts. The ON runs must also
// genuinely skip decode work — otherwise this pins nothing.
TEST(CompressedTrainEquivalenceTest, FavoritaGbdtBitIdenticalToDecodedPath) {
  struct Config {
    bool cexec;
    int threads;
  };
  const Config configs[] = {{true, 1}, {true, 4}, {false, 1}, {false, 4}};
  std::vector<std::string> model_strings;
  std::vector<std::vector<double>> predictions;
  std::vector<size_t> avoided;
  for (const Config& c : configs) {
    EngineProfile p = EngineProfile::DSwap();
    p.compressed_exec = c.cexec;
    p.exec_threads = c.threads;
    p.morsel_rows = 256;
    p.parallel_threshold_rows = 64;
    exec::Database db(p);
    data::FavoritaConfig cfg = test_util::TinyFavorita();
    cfg.date_feature_on_fact = true;
    data::MakeFavorita(&db, cfg);
    // Snowflake join graph, but features concentrated on the fact: the date
    // key doubles as a feature and the fact is date-ordered, so splits on it
    // become zone-map-answerable range scans on the lifted fact — that's
    // what makes the avoided-decompression assertion below meaningful.
    Dataset ds(&db);
    ds.AddTable("sales", {"date_id", "onpromotion", "xs0"}, "unit_sales");
    ds.AddTable("items", {});
    ds.AddTable("stores", {});
    ds.AddTable("transactions", {"f_trans"});
    ds.AddJoin("sales", "items", {"item_id"});
    ds.AddJoin("sales", "stores", {"store_id"});
    ds.AddJoin("sales", "transactions", {"store_id", "date_id"});
    core::TrainParams params;
    params.boosting = "gbdt";
    params.num_iterations = 3;
    params.num_leaves = 6;
    TrainResult res = Train(params, ds);
    model_strings.push_back(res.model.ToString());
    core::JoinedEval eval = core::MaterializeJoin(ds);
    std::vector<double> preds(eval.rows());
    for (size_t r = 0; r < eval.rows(); ++r) {
      preds[r] = eval.Predict(res.model, r);
    }
    predictions.push_back(std::move(preds));
    avoided.push_back(res.plan_stats.cells_decompress_avoided);
  }
  for (size_t i = 1; i < model_strings.size(); ++i) {
    EXPECT_EQ(model_strings[0], model_strings[i])
        << "model diverged: config " << i;
    ASSERT_EQ(predictions[0].size(), predictions[i].size());
    for (size_t r = 0; r < predictions[0].size(); ++r) {
      ASSERT_EQ(predictions[0][r], predictions[i][r])
          << "prediction diverged at row " << r << ", config " << i;
    }
  }
  // The compressed runs actually exercised the encoded path...
  EXPECT_GT(avoided[0], 0u) << "training never avoided a decompression";
  // ...deterministically across thread counts...
  EXPECT_EQ(avoided[0], avoided[1]);
  // ...and the decoded baselines never took it.
  EXPECT_EQ(avoided[2], 0u);
  EXPECT_EQ(avoided[3], 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrainEquivalenceTest,
                         ::testing::Values(1, 7, 42, 1234));

}  // namespace
}  // namespace joinboost
