// Quickstart: train a gradient-boosting model over a normalized database
// without ever materializing the join — the paper's Figure 4 example.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "joinboost.h"
#include "util/rng.h"

int main() {
  using namespace joinboost;

  // 1. An embedded columnar SQL engine (the D-Swap profile is the paper's
  //    modified DuckDB with pointer-based column swap).
  exec::Database db(EngineProfile::DSwap());

  // 2. Two normalized tables: a sales fact and a date dimension.
  Rng rng(7);
  const size_t kRows = 20000;
  const int64_t kDates = 365;
  std::vector<int64_t> date_id(kRows);
  std::vector<double> price(kRows), net_profit(kRows);
  std::vector<int64_t> dim_date(static_cast<size_t>(kDates));
  std::vector<double> holiday(static_cast<size_t>(kDates)),
      weekend(static_cast<size_t>(kDates));
  for (int64_t d = 0; d < kDates; ++d) {
    dim_date[static_cast<size_t>(d)] = d;
    holiday[static_cast<size_t>(d)] = rng.NextDouble() < 0.03 ? 1.0 : 0.0;
    weekend[static_cast<size_t>(d)] = (d % 7 >= 5) ? 1.0 : 0.0;
  }
  for (size_t i = 0; i < kRows; ++i) {
    date_id[i] = rng.NextInt(0, kDates - 1);
    price[i] = 5.0 + rng.NextDouble() * 20.0;
    double h = holiday[static_cast<size_t>(date_id[i])];
    double w = weekend[static_cast<size_t>(date_id[i])];
    net_profit[i] =
        2.0 * price[i] + 30.0 * h + 12.0 * w + rng.NextGaussian() * 3.0;
  }
  db.LoadTable(TableBuilder("sales")
                   .AddInts("date_id", date_id)
                   .AddDoubles("price", price)
                   .AddDoubles("net_profit", net_profit)
                   .Build());
  db.LoadTable(TableBuilder("date")
                   .AddInts("date_id", dim_date)
                   .AddDoubles("holiday", holiday)
                   .AddDoubles("weekend", weekend)
                   .Build());

  // 3. Declare the training dataset as a join graph (paper Figure 4).
  Dataset train_set(&db);
  train_set.AddTable("sales", /*features=*/{"price"}, /*y=*/"net_profit");
  train_set.AddTable("date", {"holiday", "weekend"});
  train_set.AddJoin("sales", "date", {"date_id"});

  // 4. Train with LightGBM-style parameters.
  core::TrainParams params;
  params.objective = "regression";
  params.num_iterations = 30;
  params.num_leaves = 8;
  params.learning_rate = 0.2;
  TrainResult result = Train(params, train_set);

  std::printf("trained %zu trees in %.3fs (residual updates: %.3fs)\n",
              result.model.trees.size(), result.seconds,
              result.update_seconds);
  std::printf("message queries: %zu, split queries: %zu, cache hits: %zu\n",
              result.message_queries, result.feature_queries,
              result.cache_hits);

  // 5. Evaluate. (Materializing the join is only needed for evaluation —
  //    training itself never did.)
  core::JoinedEval eval = core::MaterializeJoin(train_set);
  std::printf("train RMSE: %.4f (base-score-only: %.4f)\n",
              eval.Rmse(result.model), eval.RmseCurve(result.model)[0]);
  std::printf("first tree:\n%s", result.model.trees[0].ToString().c_str());
  return 0;
}
