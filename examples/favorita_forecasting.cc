// Grocery demand forecasting on the Favorita-like snowflake schema (the
// paper's primary workload): compares gradient boosting with a random
// forest, inspects feature importances, and shows the generated SQL flavor.
#include <cstdio>
#include <map>

#include "data/generators.h"
#include "joinboost.h"

int main() {
  using namespace joinboost;

  exec::Database db(EngineProfile::DSwap());
  data::FavoritaConfig config;
  config.sales_rows = 80000;
  Dataset ds = data::MakeFavorita(&db, config);

  std::printf("schema: %zu relations, %zu features, fact rows=%zu\n",
              ds.graph().num_relations(), ds.graph().AllFeatures().size(),
              config.sales_rows);

  // Gradient boosting.
  core::TrainParams gbdt;
  gbdt.boosting = "gbdt";
  gbdt.num_iterations = 30;
  gbdt.num_leaves = 8;
  gbdt.learning_rate = 0.1;
  TrainResult gb = Train(gbdt, ds);

  // Random forest with the paper's sampling defaults (10% rows, 80%
  // features), trees trained in parallel.
  core::TrainParams rf;
  rf.boosting = "rf";
  rf.num_iterations = 30;
  rf.num_leaves = 8;
  rf.bagging_fraction = 0.1;
  rf.feature_fraction = 0.8;
  rf.inter_query_parallelism = true;
  TrainResult forest = Train(rf, ds);

  core::JoinedEval eval = core::MaterializeJoin(ds);
  std::printf("GBDT   rmse=%.2f  (%.2fs, %zu msg queries, %zu cache hits)\n",
              eval.Rmse(gb.model), gb.seconds, gb.message_queries,
              gb.cache_hits);
  std::printf("Forest rmse=%.2f  (%.2fs)\n", eval.Rmse(forest.model),
              forest.seconds);

  // Feature importances (total split gain).
  std::map<std::string, double> importance;
  for (const auto& tree : gb.model.trees) {
    tree.AccumulateImportance(
        [&](const std::string& f, double g) { importance[f] += g; });
  }
  std::printf("\nGBDT split-gain importance:\n");
  for (const auto& [feature, gain] : importance) {
    std::printf("  %-12s %12.1f\n", feature.c_str(), gain);
  }

  // Peek at the SQL JoinBoost actually ran (the last few queries).
  std::printf("\nlast generated SQL statements:\n");
  auto log = db.QueryLog();
  size_t shown = 0;
  for (size_t i = log.size(); i-- > 0 && shown < 2;) {
    if (log[i].tag == "feature" || log[i].tag == "update") {
      std::printf("  [%s] %.120s...\n", log[i].tag.c_str(),
                  log[i].sql.c_str());
      ++shown;
    }
  }
  return 0;
}
