// A tiny interactive SQL shell over the embedded engine — handy for poking
// at the tables, messages and update relations JoinBoost creates.
// Usage: ./sql_shell            (starts with demo tables loaded)
//        echo "SELECT ..." | ./sql_shell
#include <cstdio>
#include <iostream>
#include <string>

#include "joinboost.h"

int main() {
  using namespace joinboost;
  exec::Database db(EngineProfile::DSwap());

  db.LoadTable(TableBuilder("r")
                   .AddInts("a", {1, 1, 2, 2})
                   .AddInts("b", {2, 3, 1, 2})
                   .Build());
  db.LoadTable(TableBuilder("s")
                   .AddInts("a", {1, 1, 2})
                   .AddInts("c", {2, 1, 3})
                   .Build());

  std::printf("joinboost sql shell — tables: r(a,b), s(a,c). "
              "\\dt lists tables, \\stats dumps execution counters, "
              "\\q quits.\n"
              "EXPLAIN SELECT ... prints the logical plan "
              "(pushdown, pruning, join order).\n");
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    if (line == "\\q") break;
    if (line == "\\dt") {
      for (const auto& name : db.catalog().ListTables()) {
        auto t = db.catalog().Get(name);
        std::printf("  %s %s (%zu rows)\n", name.c_str(),
                    t->schema().ToString().c_str(), t->num_rows());
      }
      continue;
    }
    if (line == "\\stats") {
      std::printf("%s", plan::FormatStats(db.PlanStatsTotals()).c_str());
      continue;
    }
    try {
      auto res = db.Execute(line);
      if (res.table) {
        const auto& t = *res.table;
        if (t.cols.size() == 1 && t.cols[0].name == "plan" &&
            t.cols[0].data.type == TypeId::kString) {
          // EXPLAIN output: print every line verbatim, no padding/limit.
          for (size_t r = 0; r < t.rows; ++r) {
            std::printf("%s\n", t.GetValue(r, 0).s.c_str());
          }
          continue;
        }
        for (const auto& c : t.cols) std::printf("%12s", c.name.c_str());
        std::printf("\n");
        for (size_t r = 0; r < std::min<size_t>(t.rows, 20); ++r) {
          for (size_t c = 0; c < t.cols.size(); ++c) {
            Value v = t.GetValue(r, c);
            if (v.null) {
              std::printf("%12s", "NULL");
            } else if (v.type == TypeId::kFloat64) {
              std::printf("%12.4f", v.d);
            } else if (v.type == TypeId::kString) {
              std::printf("%12s", v.s.c_str());
            } else {
              std::printf("%12lld", static_cast<long long>(v.i));
            }
          }
          std::printf("\n");
        }
        if (t.rows > 20) std::printf("  ... (%zu rows)\n", t.rows);
      } else {
        std::printf("ok (%zu rows affected)\n", res.affected);
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
  }
  return 0;
}
