// Training over a galaxy schema: the IMDB-like workload whose full join is
// too large to materialize (paper: >1TB). Gradient boosting proceeds via
// Clustered Predicate Trees (§4.2.2): each tree is confined to one cluster
// so residual updates stay factorized.
#include <cstdio>

#include "data/generators.h"
#include "joinboost.h"

int main() {
  using namespace joinboost;

  exec::Database db(EngineProfile::DSwap());
  data::ImdbConfig config;
  config.num_movies = 1500;
  config.num_persons = 4000;
  Dataset ds = data::MakeImdb(&db, config);
  ds.Prepare();

  // Show the CPT clusters (paper Figure 3: five clusters, fact highlighted).
  std::vector<int> facts;
  std::vector<int> clusters = ds.graph().ComputeClusters(&facts);
  std::printf("CPT clusters:\n");
  for (size_t cid = 0; cid < facts.size(); ++cid) {
    std::printf("  cluster %zu (fact=%s):", cid,
                ds.graph().relation(facts[cid]).name.c_str());
    for (size_t r = 0; r < clusters.size(); ++r) {
      if (clusters[r] == static_cast<int>(cid)) {
        std::printf(" %s", ds.graph().relation(static_cast<int>(r)).name.c_str());
      }
    }
    std::printf("\n");
  }

  core::TrainParams params;
  params.boosting = "gbdt";
  params.objective = "regression";  // rmse: the add-to-mul preserving one
  params.num_iterations = 12;
  params.num_leaves = 4;
  params.learning_rate = 0.15;
  TrainResult res = Train(params, ds);

  std::printf("\ntrained %zu trees in %.2fs — residual updates %.2fs\n",
              res.model.trees.size(), res.seconds, res.update_seconds);

  // Which cluster did each tree pick?
  for (size_t t = 0; t < res.model.trees.size(); ++t) {
    const auto& tree = res.model.trees[t];
    std::string root_feature = "(none)";
    for (const auto& n : tree.nodes) {
      if (!n.is_leaf) {
        root_feature = n.feature;
        break;
      }
    }
    std::printf("  tree %zu splits first on %s\n", t, root_feature.c_str());
  }

  // Evaluation materializes the join — only feasible at this toy scale.
  core::JoinedEval eval = core::MaterializeJoin(ds);
  auto curve = eval.RmseCurve(res.model);
  std::printf("\njoin cardinality at toy scale: %zu rows\n", eval.rows());
  std::printf("rmse: %.3f -> %.3f over %zu iterations\n", curve.front(),
              curve.back(), res.model.trees.size());
  return 0;
}
